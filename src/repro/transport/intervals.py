"""Half-open integer interval set.

The receiver's reassembly buffer, the SACK scoreboard, and the TACK
"acked list"/"unacked list" all need the same algebra: insert byte
ranges, coalesce, and enumerate present ranges or gaps.  Implemented as
a sorted list of disjoint ``[start, end)`` pairs; n is tiny in practice
(number of holes), so linear scans with :mod:`bisect` are fine.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator


class IntervalSet:
    """Set of non-negative integers stored as disjoint half-open ranges."""

    __slots__ = ("_starts", "_ends")

    def __init__(self, ranges: Iterable[tuple[int, int]] = ()):
        self._starts: list[int] = []
        self._ends: list[int] = []
        for start, end in ranges:
            self.add(start, end)

    # ------------------------------------------------------------------
    def add(self, start: int, end: int) -> int:
        """Insert ``[start, end)``; returns the number of *new* integers
        added (0 when fully overlapping existing ranges)."""
        if end <= start:
            return 0
        i = bisect.bisect_left(self._ends, start)
        # Ranges [i, j) overlap or touch the new range.
        j = i
        new_start, new_end = start, end
        overlap = 0
        while j < len(self._starts) and self._starts[j] <= end:
            overlap += min(self._ends[j], end) - max(self._starts[j], start)
            new_start = min(new_start, self._starts[j])
            new_end = max(new_end, self._ends[j])
            j += 1
        added = (end - start) - max(0, overlap)
        self._starts[i:j] = [new_start]
        self._ends[i:j] = [new_end]
        return added

    def remove_below(self, bound: int) -> None:
        """Delete every integer < ``bound`` (used when the app consumes
        in-order data)."""
        while self._starts and self._ends[0] <= bound:
            self._starts.pop(0)
            self._ends.pop(0)
        if self._starts and self._starts[0] < bound:
            self._starts[0] = bound

    # ------------------------------------------------------------------
    def __contains__(self, value: int) -> bool:
        i = bisect.bisect_right(self._starts, value) - 1
        return i >= 0 and value < self._ends[i]

    def contains_range(self, start: int, end: int) -> bool:
        """True when every integer in ``[start, end)`` is present."""
        if end <= start:
            return True
        i = bisect.bisect_right(self._starts, start) - 1
        return i >= 0 and self._ends[i] >= end

    def covered(self) -> int:
        """Total number of integers present."""
        return sum(e - s for s, e in zip(self._starts, self._ends))

    def ranges(self) -> list[tuple[int, int]]:
        """Disjoint present ranges, ascending."""
        return list(zip(self._starts, self._ends))

    def gaps(self, upto: int) -> list[tuple[int, int]]:
        """Missing ranges below ``upto`` (and above the lowest present
        value or zero)."""
        result = []
        prev = 0
        for s, e in zip(self._starts, self._ends):
            if s >= upto:
                break
            if s > prev:
                result.append((prev, min(s, upto)))
            prev = e
        if prev < upto:
            result.append((prev, upto))
        return result

    def first_missing(self, from_value: int = 0) -> int:
        """Smallest integer >= ``from_value`` not in the set."""
        i = bisect.bisect_right(self._starts, from_value) - 1
        if i >= 0 and from_value < self._ends[i]:
            return self._ends[i]
        return from_value

    def max_end(self) -> int:
        """One past the largest present integer (0 when empty)."""
        return self._ends[-1] if self._ends else 0

    def __len__(self) -> int:
        return len(self._starts)

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(self.ranges())

    def __bool__(self) -> bool:
        return bool(self._starts)

    def __repr__(self) -> str:
        return f"IntervalSet({self.ranges()!r})"
