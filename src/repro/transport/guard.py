"""Feedback validation guard: the sender's peer-trust boundary.

TACK deliberately moves control to the receiver — retransmissions are
*pulled* by IACKs, RTT_min comes from echoed departure stamps, the
delivery rate arrives pre-computed — so a buggy or adversarial peer
holds levers a classic TCP receiver never had.  The
:class:`FeedbackValidator` checks every :class:`~repro.transport.
feedback.AckFeedback` against ground truth the sender already holds:

=================  ====================================================
rule               violated when
=================  ====================================================
``format``         the frame fails :func:`~repro.transport.feedback.
                   check_wire_form` (wrong types/shapes); the whole
                   frame is dropped
``cum_ack``        ``cum_ack`` is negative or beyond ``snd_nxt`` —
                   acknowledging data never sent (optimistic ACK);
                   the field is reset to the last good value
``fb_seq_replay``  ``fb_seq`` is older than the highest seen minus the
                   reorder window (replay); dropped from the rho'
                   estimate
``fb_seq_skip``    ``fb_seq`` jumps ahead by more than ``fb_seq_max_
                   skip`` (would fake ACK-path loss); dropped from rho'
``sack_range``     an acked-list block falls outside ``[0, snd_nxt)``
                   or is empty/inverted; offending blocks are dropped
``unacked_range``  same for the unacked list
``pull_range``     the IACK pull range (or ``largest_pkt_seq``) names
                   PKT.SEQs never sent; the pull is dropped
``pull_flood``     in-range pulls demand more retransmission than the
                   per-RTT budget (``pull_budget``); excess dropped
``awnd``           the advertised window is negative or absurd
                   (> ``AWND_MAX``); previous value kept
``echo_ts``        the echoed departure timestamp was never stamped on
                   a data packet (or lies in the future); timing fields
                   are stripped
``tack_delay``     the claimed hold delay is negative or larger than
                   the time since the echoed departure (would fake a
                   tiny RTT); timing fields are stripped
``rate``           ``delivery_rate_bps`` is negative or implausibly
                   above what the sender ever sent; ``rx_loss_rate``
                   outside [0, 1]; the field is dropped/clamped
``withheld``       the ACK-withholding watchdog probed: feedback
                   stopped while accepted sends kept flowing
=================  ====================================================

Policy: **tolerate -> clamp -> escalate**.  Every violation is counted
per rule and the offending *field* is clamped or dropped so the frame's
remaining information is still used (a single bad block must not stall
recovery); the first ``trace_limit`` violations per rule emit a
``guard``/``violation`` telemetry event, later ones only count (a
mangling peer cannot blow up the trace or the binlog ring) and the
final totals go out in one ``guard``/``summary`` event at close.  When
one rule's count reaches ``escalate_after`` (or the total reaches
``escalate_total``) the guard escalates and the sender aborts with the
structured reason ``misbehaving_peer`` — observable, classifiable,
never a hang or a crash.  Strict mode (``REPRO_GUARD_STRICT=1`` or
``GuardConfig(strict=True)``) escalates on the *first* violation; the
false-positive suite runs the whole chaos matrix in strict mode to
prove legitimate feedback never trips a rule.

The watchdog is the T-RACKs-style last resort (PAPERS.md): when all
feedback stops but the network keeps *accepting* data packets, RTO
exhaustion alone would take minutes (backoff) or never fire (a peer
acking everything except the tail).  The sender probes up to
``watchdog_probes`` times — each probe retransmits the first unacked
segment — and aborts ``misbehaving_peer`` when every probe window
passes in silence.  Probes require accepted sends since the previous
probe, so a dead *path* (sends refused at ingress) still ends in the
honest ``rto_exhausted``.
"""

from __future__ import annotations

import collections
import os
from dataclasses import dataclass
from typing import Any, Optional, TYPE_CHECKING

from repro.transport.errors import FeedbackFormatError
from repro.transport.feedback import AckFeedback, check_wire_form, clone_feedback

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.transport.sender import TransportSender

#: Largest advertised window the guard accepts (256 TiB — far beyond
#: any simulated buffer, small enough to reject garbage like 2**62).
AWND_MAX = 1 << 48

#: Stable rule vocabulary (DESIGN.md section 17); telemetry events,
#: diagnosis reports, and tests all key on these strings.
RULES = (
    "format", "cum_ack", "fb_seq_replay", "fb_seq_skip", "sack_range",
    "unacked_range", "pull_range", "pull_flood", "awnd", "echo_ts",
    "tack_delay", "rate", "withheld",
)

_EPS = 1e-9


def resolve_strict(strict: Optional[bool]) -> bool:
    """Explicit setting wins; else the ``REPRO_GUARD_STRICT`` env var
    (same convention as ``repro.sanitize.resolve``)."""
    if strict is not None:
        return strict
    return os.environ.get("REPRO_GUARD_STRICT", "") not in ("", "0")


@dataclass(frozen=True)
class GuardConfig:
    """Tuning knobs of the feedback guard (defaults are deliberately
    generous: the false-positive property — no rule fires on legitimate
    feedback across the chaos matrix — is part of the test suite)."""

    enabled: bool = True
    #: None -> consult ``REPRO_GUARD_STRICT``; strict escalates on the
    #: first violation (used by the false-positive suite).
    strict: Optional[bool] = None
    #: One rule reaching this count escalates to ``misbehaving_peer``.
    escalate_after: int = 64
    #: ... as does the sum over all rules reaching this.
    escalate_total: int = 256
    #: ... as does one rule firing on this many *consecutive* frames.
    #: Absolute counts starve when feedback only arrives at RTO cadence
    #: (an optimistic acker collapses the window, so a legacy scheme
    #: sees ~1 frame per backed-off RTO); a persistent per-frame attack
    #: is unmistakable long before ``escalate_after``.  Legitimate
    #: feedback never fires a rule at all, so any run is adversarial.
    escalate_consecutive: int = 8
    #: Per rule, violations after the first ``trace_limit`` are counted
    #: but not traced (satellite: bounded event volume per rule).
    trace_limit: int = 5
    #: Feedback reordering tolerance before an old fb_seq is a replay:
    #: the *floor* in frames.  Lateness in frames is delay disturbance
    #: x feedback rate (a 500 ms route flip under per-packet acking
    #: delays hundreds of frames), so the effective window is
    #: ``max(floor, peak fb rate x fb_seq_reorder_s)``.
    fb_seq_reorder_window: int = 256
    #: Time span of legitimate feedback lateness the replay rule must
    #: tolerate (route flips, delay spikes); see above.
    fb_seq_reorder_s: float = 2.0
    #: Largest accepted forward jump in fb_seq (a bigger skip would
    #: fake catastrophic ACK-path loss).
    fb_seq_max_skip: int = 4096
    #: How long a departure stamp stays echoable.
    echo_window_s: float = 10.0
    #: delivery_rate_bps cap: ``rate_slack`` x the sender's own *peak*
    #: send rate (max over inter-feedback intervals — a lifetime
    #: average would collapse during a legitimate zero-window stall and
    #: reject the honest post-drain report), floored at
    #: ``rate_floor_bps`` for the startup phase.
    rate_slack: float = 16.0
    rate_floor_bps: float = 50e6
    #: In-range pull budget per srtt window: ``pull_budget_mult`` x the
    #: effective window (in packets), floored at ``pull_budget_floor``.
    pull_budget_mult: float = 6.0
    pull_budget_floor: int = 128
    #: ACK-withholding watchdog (see module docstring).
    watchdog: bool = True
    watchdog_rto_mult: float = 4.0
    watchdog_floor_s: float = 1.0
    #: Silence threshold ceiling.  The RTO backs off exponentially
    #: during exactly the silence the watchdog watches for, so an
    #: uncapped ``mult x rto`` threshold outruns the silence forever
    #: and the probe never fires.
    watchdog_cap_s: float = 10.0
    watchdog_probes: int = 3
    watchdog_min_sends: int = 1


class FeedbackValidator:
    """Validates every feedback frame against sender ground truth.

    ``admit`` returns the (possibly sanitized) frame to process, or
    ``None`` when the whole frame must be discarded; :attr:`escalated`
    flips once the tolerate budget is spent, after which the sender
    aborts ``misbehaving_peer``.  Sanitizing never mutates the
    receiver's object — a clone is made on the first violation.
    """

    def __init__(self, sender: "TransportSender",
                 config: Optional[GuardConfig] = None):
        self.sender = sender
        self.cfg = config or GuardConfig()
        self.strict = resolve_strict(self.cfg.strict)
        self.counts: dict[str, int] = {}
        self.total = 0
        self.frames = 0
        self.escalated = False
        self.escalation_rule: Optional[str] = None
        # Echoable departure stamps: membership set + FIFO for pruning.
        self._stamps: set[float] = set()
        self._stamp_q: collections.deque[float] = collections.deque()
        self._fb_seq_max = -1
        self._fb_seq_last: Optional[int] = None
        self._fb_seq_run = 0
        # Peak feedback rate (frames/s) — sizes the replay window.
        self._fb_rate_mark: Optional[tuple[float, int]] = None
        self._peak_fb_rate = 0.0
        # Per-rule consecutive-frame runs (escalate_consecutive).
        self._frame_rules: set[str] = set()
        self._consec: dict[str, int] = {}
        # Pull budget window: hull of PKT.SEQ space named this window.
        self._pull_window_start = 0.0
        self._pull_hull: Optional[tuple[int, int]] = None
        self._pull_window_pkts = 0
        # Peak send rate (ground truth for the delivery-rate cap).
        self._rate_mark: Optional[tuple[float, int]] = None
        self._peak_send_bps = 0.0

    # ------------------------------------------------------------------
    # bookkeeping fed by the sender
    # ------------------------------------------------------------------
    def on_data_sent(self, ts: float, now: float) -> None:
        """Record a data-packet departure stamp (TACK timing ground
        truth).  Time is monotone, so the FIFO prunes in order."""
        if ts not in self._stamps:
            self._stamps.add(ts)
            self._stamp_q.append(ts)
        horizon = now - self.cfg.echo_window_s
        while self._stamp_q and self._stamp_q[0] < horizon:
            self._stamps.discard(self._stamp_q.popleft())

    # ------------------------------------------------------------------
    # violation machinery
    # ------------------------------------------------------------------
    def _escalate_after(self) -> int:
        return 1 if self.strict else self.cfg.escalate_after

    def _escalate_total(self) -> int:
        return 1 if self.strict else self.cfg.escalate_total

    def violate(self, rule: str, detail: str) -> None:
        """Count one violation of ``rule``; trace the first few and
        escalate when the budget is spent."""
        count = self.counts.get(rule, 0) + 1
        self.counts[rule] = count
        self.total += 1
        self._frame_rules.add(rule)
        if count <= self.cfg.trace_limit:
            self.sender._obs_guard("violation", rule=rule, count=count,
                                   detail=detail)
        if (count >= self._escalate_after()
                or self.total >= self._escalate_total()):
            self._escalate(rule)

    def _escalate(self, rule: str) -> None:
        if self.escalated:
            return
        self.escalated = True
        self.escalation_rule = rule
        self.sender._obs_guard("escalated", rule=rule,
                               count=self.counts.get(rule, 0),
                               total=self.total)

    def _end_frame(self) -> None:
        """Close one frame's accounting: advance the consecutive-run
        counter of every rule that fired, reset the ones that did not,
        and escalate on a run of ``escalate_consecutive`` frames."""
        for rule in list(self._consec):
            if rule not in self._frame_rules:
                del self._consec[rule]
        for rule in self._frame_rules:
            run = self._consec.get(rule, 0) + 1
            self._consec[rule] = run
            if run >= self.cfg.escalate_consecutive:
                self._escalate(rule)
        self._frame_rules = set()

    def note_withheld(self) -> None:
        """Count one watchdog probe under the ``withheld`` rule.

        Deliberately outside :meth:`violate`'s escalation accounting:
        a couple of probes happen on legitimate blackouts (silence
        looks the same from the sender until the link refuses sends),
        so probes must neither trip strict mode nor drain the
        escalation budget — the watchdog escalates by its own probe
        count.
        """
        self.counts["withheld"] = self.counts.get("withheld", 0) + 1

    def emit_summary(self) -> None:
        """One ``guard``/``summary`` event with the final per-rule
        counts (the tail of the rate-limited violation stream)."""
        if self.total == 0:
            return
        self.sender._obs_guard("summary", total=self.total,
                               frames=self.frames, **self.counts)

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def admit(self, fb: Any, now: float) -> Optional[AckFeedback]:
        """Validate one frame; returns a safe frame or ``None``."""
        self.frames += 1
        snd = self.sender
        try:
            check_wire_form(fb)
        except FeedbackFormatError as exc:
            # Nothing in the frame can be trusted: drop it whole.
            self.violate("format", str(exc))
            self._end_frame()
            return None

        out = fb

        def sanitized() -> AckFeedback:
            nonlocal out
            if out is fb:
                out = clone_feedback(fb)
            return out

        # --- cumulative ACK against snd_nxt -------------------------
        if fb.cum_ack < 0 or fb.cum_ack > snd.next_seq:
            self.violate("cum_ack",
                         f"cum_ack={fb.cum_ack} outside [0, {snd.next_seq}]")
            # Reset to the last good value: an optimistic ACK must not
            # fake progress (clamping to snd_nxt would ack everything).
            sanitized().cum_ack = snd.cum_acked

        # --- advertised window --------------------------------------
        if fb.awnd < 0 or fb.awnd > AWND_MAX:
            self.violate("awnd", f"awnd={fb.awnd}")
            sanitized().awnd = min(max(snd.awnd, 0), AWND_MAX)

        # --- feedback sequence number -------------------------------
        # Peak feedback rate over >= 100 ms spans sizes the replay
        # window: a route flip's +delta delay makes honest frames
        # arrive (delta x fb rate) positions late, far past any fixed
        # frame count under per-packet acking.
        if self._fb_rate_mark is None:
            self._fb_rate_mark = (now, self.frames)
        else:
            t0, n0 = self._fb_rate_mark
            if now - t0 >= 0.1:
                self._peak_fb_rate = max(
                    self._peak_fb_rate, (self.frames - n0) / (now - t0))
                self._fb_rate_mark = (now, self.frames)
        reorder_window = max(
            self.cfg.fb_seq_reorder_window,
            int(self._peak_fb_rate * self.cfg.fb_seq_reorder_s))
        if fb.fb_seq is not None:
            # The receiver never reuses fb_seq; the network may
            # duplicate a frame once or twice, but a long run of the
            # *same* value is a frozen/replayed counter masking real
            # ACK-path loss from the rho' estimate.
            if fb.fb_seq == self._fb_seq_last:
                self._fb_seq_run += 1
            else:
                self._fb_seq_last = fb.fb_seq
                self._fb_seq_run = 1
            if fb.fb_seq < 0:
                self.violate("fb_seq_replay", f"fb_seq={fb.fb_seq}")
                sanitized().fb_seq = None
            elif self._fb_seq_run > 8:
                self.violate("fb_seq_replay",
                             f"fb_seq={fb.fb_seq} repeated "
                             f"{self._fb_seq_run} times")
                sanitized().fb_seq = None
            elif self._fb_seq_max >= 0 and (
                    fb.fb_seq < self._fb_seq_max - reorder_window):
                self.violate("fb_seq_replay",
                             f"fb_seq={fb.fb_seq} << max={self._fb_seq_max}")
                sanitized().fb_seq = None
            elif self._fb_seq_max >= 0 and (
                    fb.fb_seq > self._fb_seq_max + self.cfg.fb_seq_max_skip):
                # Do NOT advance the high-water mark: one absurd skip
                # must not turn every later legitimate fb_seq into a
                # "replay".
                self.violate("fb_seq_skip",
                             f"fb_seq={fb.fb_seq} >> max={self._fb_seq_max}")
                sanitized().fb_seq = None
            else:
                if fb.fb_seq > self._fb_seq_max:
                    self._fb_seq_max = fb.fb_seq

        # --- block lists against sent byte ranges -------------------
        for attr, rule in (("sack_blocks", "sack_range"),
                           ("unacked_blocks", "unacked_range")):
            blocks = getattr(fb, attr)
            good = [b for b in blocks
                    if 0 <= b[0] < b[1] <= snd.next_seq]
            if len(good) != len(blocks):
                bad = next(b for b in blocks
                           if not (0 <= b[0] < b[1] <= snd.next_seq))
                self.violate(rule, f"block {bad!r} outside [0, {snd.next_seq})")
                setattr(sanitized(), attr, good)

        # --- PKT.SEQ-space claims -----------------------------------
        sent_top = snd.next_pkt_seq - 1
        if fb.largest_pkt_seq is not None and not (
                0 <= fb.largest_pkt_seq <= sent_top):
            self.violate("pull_range",
                         f"largest_pkt_seq={fb.largest_pkt_seq} > {sent_top}")
            sanitized().largest_pkt_seq = None
        pull = fb.pull_pkt_range
        if pull is not None:
            lo, hi = pull
            if not (0 <= lo <= hi <= sent_top):
                self.violate("pull_range",
                             f"pull {pull!r} outside [0, {sent_top}]")
                sanitized().pull_pkt_range = None
            else:
                # In-range pull: charge the per-RTT retransmission
                # budget (a flood of valid-looking pulls would bypass
                # the governor, paper S5.1's certain-loss rule).  The
                # charge is *hull growth* — newly named PKT.SEQ space —
                # because a legitimate receiver re-pulls the same loss
                # range every TACK until it fills; re-demanding is
                # free, demanding ever more distinct space is not.
                window = max(snd.rtt.smoothed(), 1e-3)
                if now - self._pull_window_start > window:
                    self._pull_window_start = now
                    self._pull_hull = None
                    self._pull_window_pkts = 0
                hull = self._pull_hull
                if hull is None:
                    growth = max(hi - lo - 1, 0)
                    hull = (lo, hi)
                else:
                    merged = (min(lo, hull[0]), max(hi, hull[1]))
                    growth = ((merged[1] - merged[0])
                              - (hull[1] - hull[0]))
                    hull = merged
                self._pull_hull = hull
                self._pull_window_pkts += max(growth, 0)
                # Budget: the unacked horizon is the only space a
                # truthful receiver can be missing (the effective
                # window alone under-counts right after a loss burst
                # collapses cwnd below what was in flight).
                unacked_pkts = max(
                    (snd.next_seq - snd.cum_acked) // max(snd.mss, 1), 1)
                budget = max(self.cfg.pull_budget_floor,
                             int(self.cfg.pull_budget_mult * unacked_pkts))
                if self._pull_window_pkts > budget:
                    self.violate("pull_flood",
                                 f"{self._pull_window_pkts} pulled pkts "
                                 f"in one rtt > budget {budget}")
                    sanitized().pull_pkt_range = None

        # --- echoed timing (TACK mode only: legacy senders never
        # consume these fields) ---------------------------------------
        if snd.receiver_driven:
            echo = fb.echo_departure_ts
            if echo is not None:
                if echo not in self._stamps or echo > now + _EPS:
                    self.violate("echo_ts", f"echo_ts={echo!r} never stamped")
                    s = sanitized()
                    s.echo_departure_ts = None
                    s.tack_delay = None
                elif fb.tack_delay is not None and not (
                        -_EPS <= fb.tack_delay <= (now - echo) + _EPS):
                    self.violate("tack_delay",
                                 f"tack_delay={fb.tack_delay!r} outside "
                                 f"[0, {now - echo:.6f}]")
                    s = sanitized()
                    s.echo_departure_ts = None
                    s.tack_delay = None
            if fb.packet_delays:
                good_delays = [
                    (ts, d) for ts, d in fb.packet_delays
                    if ts in self._stamps and -_EPS <= d <= (now - ts) + _EPS
                ]
                if len(good_delays) != len(fb.packet_delays):
                    self.violate("echo_ts",
                                 f"{len(fb.packet_delays) - len(good_delays)} "
                                 "per-packet delay entries never stamped")
                    sanitized().packet_delays = good_delays

        # --- receiver-measured rates --------------------------------
        # Peak send rate over inter-feedback intervals (>= 1 ms): the
        # receiver can never legitimately *deliver* faster than the
        # sender ever sent, but a lifetime average is the wrong bound —
        # it decays through a zero-window stall while the receiver's
        # honest report still reflects the pre-stall line-rate burst.
        sent_bytes = snd.stats.bytes_sent
        if self._rate_mark is None:
            self._rate_mark = (now, sent_bytes)
        else:
            t0, b0 = self._rate_mark
            if now - t0 >= 1e-3:
                self._peak_send_bps = max(
                    self._peak_send_bps, (sent_bytes - b0) * 8.0 / (now - t0))
                self._rate_mark = (now, sent_bytes)
        rate = fb.delivery_rate_bps
        if rate is not None and rate < 0:
            self.violate("rate", f"delivery_rate_bps={rate!r}")
            sanitized().delivery_rate_bps = None
        elif rate is not None:
            cap = max(self.cfg.rate_floor_bps,
                      self.cfg.rate_slack * self._peak_send_bps)
            if rate > cap:
                self.violate("rate",
                             f"delivery_rate_bps={rate:.3g} > cap {cap:.3g}")
                sanitized().delivery_rate_bps = None
        if fb.rx_loss_rate is not None and not (0.0 <= fb.rx_loss_rate <= 1.0):
            self.violate("rate", f"rx_loss_rate={fb.rx_loss_rate!r}")
            sanitized().rx_loss_rate = min(max(fb.rx_loss_rate, 0.0), 1.0)

        self._end_frame()
        return out
