"""Connection: a sender and a receiver wired across two ports.

A "port" is anything with ``send(packet) -> bool`` and
``connect(sink)`` — a wired :class:`~repro.netsim.link.Link`, a WLAN
:class:`~repro.wlan.station.Station`, a :class:`~repro.netsim.pipe.Pipe`
— so the same connection runs over every substrate in the paper.
"""

from __future__ import annotations

from typing import Optional

from repro.ack.base import AckPolicy
from repro.cc.base import CongestionController
from repro.netsim.engine import Simulator
from repro.netsim.packet import MSS
from repro.transport.errors import AbortInfo, ConnectionAborted, abort_result
from repro.transport.guard import GuardConfig
from repro.transport.receiver import TransportReceiver
from repro.transport.sender import TransportSender


class ConnectionConfig:
    """Knobs shared by both endpoints of a connection."""

    def __init__(
        self,
        mss: int = MSS,
        rcv_buffer_bytes: int = 4 * 1024 * 1024,
        receiver_driven: bool = False,
        use_receiver_rate: bool = False,
        timing_mode: str = "legacy",
        auto_drain: bool = True,
        flow_id: int = 0,
        initial_rto_s: float = 1.0,
        simsan: Optional[bool] = None,
        max_syn_retries: int = 6,
        max_rto_retries: int = 10,
        max_persist_retries: int = 16,
        guard: Optional[GuardConfig] = None,
    ):
        self.mss = mss
        self.rcv_buffer_bytes = rcv_buffer_bytes
        self.receiver_driven = receiver_driven
        self.use_receiver_rate = use_receiver_rate
        self.timing_mode = timing_mode
        self.auto_drain = auto_drain
        self.flow_id = flow_id
        self.initial_rto_s = initial_rto_s
        # Tri-state: None follows REPRO_SIMSAN / the simulator's own
        # setting; True force-enables invariant checks on the sim.
        self.simsan = simsan
        # Give-up thresholds (see repro.transport.errors): how many
        # consecutive unanswered retries of each kind before the sender
        # records a structured abort instead of retrying forever.
        self.max_syn_retries = max_syn_retries
        self.max_rto_retries = max_rto_retries
        self.max_persist_retries = max_persist_retries
        # Feedback guard tuning; None means the default-enabled
        # GuardConfig() (see repro.transport.guard).
        self.guard = guard


class Connection:
    """One unidirectional data transfer (sender -> receiver).

    Parameters
    ----------
    sim:
        Simulation driver.
    cc:
        Congestion controller instance for the sender.
    policy:
        Acknowledgment policy instance for the receiver.
    forward_port / reverse_port:
        Data-direction and feedback-direction ports.  ``wire()`` may
        be called later instead.
    """

    def __init__(
        self,
        sim: Simulator,
        cc: CongestionController,
        policy: AckPolicy,
        config: Optional[ConnectionConfig] = None,
        forward_port=None,
        reverse_port=None,
    ):
        self.sim = sim
        self.config = config or ConnectionConfig()
        cfg = self.config
        if cfg.simsan:
            # Must happen before the endpoints are built: they cache
            # the sanitizer reference at construction time.
            sim.enable_sanitizer()
        receiver_timing = (
            cfg.timing_mode
            if cfg.timing_mode in ("advanced", "naive", "per-packet")
            else "advanced"
        )
        self.sender = TransportSender(
            sim,
            cc,
            mss=cfg.mss,
            receiver_driven=cfg.receiver_driven,
            use_receiver_rate=cfg.use_receiver_rate,
            flow_id=cfg.flow_id,
            initial_rto_s=cfg.initial_rto_s,
            max_syn_retries=cfg.max_syn_retries,
            max_rto_retries=cfg.max_rto_retries,
            max_persist_retries=cfg.max_persist_retries,
            guard=cfg.guard,
        )
        self.receiver = TransportReceiver(
            sim,
            policy,
            rcv_buffer_bytes=cfg.rcv_buffer_bytes,
            auto_drain=cfg.auto_drain,
            timing_mode=receiver_timing,
            flow_id=cfg.flow_id,
        )
        if sim.san is not None:
            sim.san.register_pair(self.sender, self.receiver)
        # When the sender gives up, tear down the receive side too so
        # its ACK clock stops and the event loop can drain.
        self.sender.on_abort(self._on_sender_abort)
        if forward_port is not None and reverse_port is not None:
            self.wire(forward_port, reverse_port)

    def _on_sender_abort(self, info: AbortInfo) -> None:
        self.receiver.close()

    def wire(self, forward_port, reverse_port) -> None:
        """Attach the two directions of the network path."""
        self.sender.connect(forward_port)
        self.receiver.connect(reverse_port)
        forward_port.connect(self.receiver.on_packet)
        reverse_port.connect(self.sender.on_packet)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def start_bulk(self) -> None:
        """Begin an unlimited bulk transfer."""
        self.sender.set_unlimited()
        self.sender.start()

    def start_transfer(self, nbytes: int) -> None:
        """Begin a fixed-size transfer of ``nbytes``."""
        self.sender.set_total(nbytes)
        self.sender.start()

    @property
    def completed(self) -> bool:
        return self.sender.completed_at is not None

    @property
    def aborted(self) -> Optional[AbortInfo]:
        """The structured abort record, or ``None`` while healthy."""
        return self.sender.aborted

    def raise_if_aborted(self) -> None:
        """Propagate a recorded abort as :class:`ConnectionAborted`.

        Call this *after* ``sim.run(...)`` returns — never from inside
        an event handler, where the exception would tear down every
        flow in the simulation.
        """
        if self.sender.aborted is not None:
            raise ConnectionAborted(self.sender.aborted)

    def goodput_bps(self, duration: Optional[float] = None) -> float:
        """Application goodput: bytes delivered in order at the
        receiver over ``duration`` (defaults to sim time)."""
        if duration is None:
            duration = self.sim.now()
        if duration <= 0:
            return 0.0
        return self.receiver.stats.bytes_delivered * 8.0 / duration

    def ack_count(self) -> int:
        """All feedback packets the receiver has emitted."""
        return self.receiver.stats.total_feedback()

    def summary(self) -> dict:
        """One-call snapshot of the connection's headline statistics —
        what examples and notebooks print after a run."""
        s, r = self.sender.stats, self.receiver.stats
        duration = self.sim.now()
        return {
            "duration_s": duration,
            "goodput_bps": self.goodput_bps(),
            "bytes_delivered": r.bytes_delivered,
            "data_packets_sent": s.data_packets_sent,
            "retransmissions": s.retransmissions,
            "rtos": s.rtos,
            "acks_total": r.total_feedback(),
            "acks_by_kind": {
                "ack": r.acks_sent,
                "tack": r.tacks_sent,
                "iack": r.iacks_sent,
            },
            "ack_per_data": (r.total_feedback() / s.data_packets_sent
                             if s.data_packets_sent else 0.0),
            "rtt_min_s": self.sender.current_rtt_min(),
            "completed": self.completed,
            "aborted": abort_result(self.sender.aborted),
            "guard": {
                "violations": dict(self.sender.guard.counts),
                "total": self.sender.guard.total,
                "watchdog_probes": s.watchdog_probes,
            } if self.sender.guard is not None else None,
        }

    def close(self) -> None:
        self.sender.close()
        self.receiver.close()

    def __repr__(self) -> str:
        return f"Connection(sender={self.sender!r}, receiver={self.receiver!r})"
