"""Transport receiver: reassembly, windows, and feedback construction.

The receiver is protocol-flavor-agnostic: all ACK-timing decisions live
in the attached :class:`~repro.ack.base.AckPolicy`.  The receiver owns
the state every policy snapshots into feedback:

* byte-range reassembly (cumulative ack point, SACK/acked blocks,
  gaps/unacked blocks);
* PKT.SEQ tracking for receiver-based loss detection (paper S5.1);
* relative-OWD tracking for advanced round-trip timing (S5.2);
* per-interval delivery-rate and loss-rate measurement (S5.3/S5.4);
* the advertised window derived from a finite receive buffer.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.ack.base import AckPolicy
from repro.core.loss_detect import PktSeqTracker
from repro.core.owd_timing import ReceiverOwdTracker
from repro.core.rate_sync import ReceiverRateEstimator
from repro.netsim.engine import Simulator
from repro.netsim.packet import Packet, PacketType
from repro.transport.feedback import AckFeedback, make_feedback_packet
from repro.transport.intervals import IntervalSet


class ReceiverStats:
    """Counters published by the receiver."""

    def __init__(self):
        self.data_packets = 0
        self.duplicate_packets = 0
        self.bytes_received = 0
        self.bytes_delivered = 0
        self.acks_sent = 0
        self.tacks_sent = 0
        self.iacks_sent = 0
        self.gap_events = 0
        self.peak_buffered_bytes = 0
        # Feedback the reverse port refused at ingress (blackout, loss
        # model, full queue) — the receiver-side view of ACK starvation.
        self.feedback_send_failures = 0

    def total_feedback(self) -> int:
        return self.acks_sent + self.tacks_sent + self.iacks_sent


class TransportReceiver:
    """Receiving endpoint of a connection.

    Parameters
    ----------
    sim:
        Simulation driver (timers, clock).
    policy:
        The acknowledgment policy (decides when/what to feed back).
    rcv_buffer_bytes:
        Receive-buffer capacity backing the advertised window.
    auto_drain:
        When True (default) the application consumes in-order data
        instantly; set False and call :meth:`read` to model a slow
        reader (zero-window experiments, video playback).
    timing_mode:
        "advanced" or "naive" round-trip timing (paper Fig. 6(a)).
    flow_id:
        Stamped on every feedback packet.
    """

    def __init__(
        self,
        sim: Simulator,
        policy: AckPolicy,
        rcv_buffer_bytes: int = 4 * 1024 * 1024,
        auto_drain: bool = True,
        timing_mode: str = "advanced",
        owd_ewma_gain: float = 0.25,
        flow_id: int = 0,
    ):
        self.sim = sim
        self.policy = policy
        self.rcv_buffer_bytes = rcv_buffer_bytes
        self.auto_drain = auto_drain
        self.flow_id = flow_id
        self._port = None
        # reassembly
        self.intervals = IntervalSet()
        self.delivered_ptr = 0  # next byte the app will read
        # trackers
        self.pkt_tracker = PktSeqTracker()
        self.owd = ReceiverOwdTracker(ewma_gain=owd_ewma_gain, mode=timing_mode)
        self.rate = ReceiverRateEstimator()
        self.stats = ReceiverStats()
        # sender-synced state
        self.peer_rtt_min: Optional[float] = None
        self.peer_ack_loss_rate: float = 0.0
        # feedback sequence space (all ACK flavors share one counter);
        # gaps seen by the sender measure ACK-path loss exactly.
        self._fb_seq_next = 0
        # window-event hysteresis
        self._window_was_low = False
        # gap aging for the reorder settling allowance (paper S7)
        self._gap_first_seen: dict[int, float] = {}
        self._closed = False
        self._on_deliver: Optional[Callable[[int, float], None]] = None
        self._arrival_log: Optional[list] = None
        # simsan: one None-check per data packet when disabled.
        self._san = sim.san
        if self._san is not None:
            self._san.register_receiver(self)
        # telemetry: same null-guard pattern (recv/gap/deliver + one
        # `ack`-category event per feedback emission).
        self._tel = sim.telemetry
        # site-local sampling stride for the per-packet recv/deliver
        # sites (see TraceCollector.sampling_stride).
        self._tel_stride = (self._tel.sampling_stride("transport")
                            if self._tel is not None else 0)
        self._tel_n = 0
        # diagnosis: the flow doctor counts emitted feedback (the
        # denominator side of the rho' ground truth) from the same
        # site the `ack` trace events come from.
        self._diag = getattr(sim, "diagnosis", None)
        # energy ledger: counts offered feedback bytes per flow (the
        # feedback packets' airtime/energy is billed at the link).
        self._en = getattr(sim, "energy", None)
        policy.attach(self)
        # profiling: construction-time re-binding (see the sender); the
        # ACK policy binds its own spans through attach_profiler.
        prof = getattr(sim, "profiler", None)
        if prof is not None:
            self.on_packet = prof.wrap("receiver.packet", self.on_packet)
            policy.attach_profiler(prof)

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def connect(self, port) -> None:
        """Attach the reverse-path port feedback is sent through."""
        self._port = port

    def on_deliver(self, callback: Callable[[int, float], None]) -> None:
        """Register an app callback ``(nbytes, now)`` fired when
        in-order data is handed up."""
        self._on_deliver = callback

    def enable_arrival_log(self) -> list:
        """Record ``(time, seq, pkt_seq)`` for every data arrival."""
        self._arrival_log = []
        return self._arrival_log

    # ------------------------------------------------------------------
    # ingress
    # ------------------------------------------------------------------
    def on_packet(self, packet: Packet) -> None:
        """Entry point for everything arriving on the forward path."""
        if self._closed:
            return
        if packet.kind is PacketType.SYN:
            self._handle_syn(packet)
        elif packet.kind is PacketType.DATA:
            self._handle_data(packet)
        elif packet.kind is PacketType.FIN:
            self.policy.on_close()
        # Anything else (stray feedback) is ignored.

    def _handle_syn(self, packet: Packet) -> None:
        reply = Packet(PacketType.SYN_ACK, size=64, flow_id=self.flow_id)
        reply.sent_at = self.sim.now()
        reply.meta["syn_sent_at"] = packet.sent_at
        if self._port is not None:
            self._port.send(reply)

    def _handle_data(self, packet: Packet) -> None:
        now = self.sim.now()
        assert packet.seq is not None and packet.pkt_seq is not None
        if "rtt_min" in packet.meta:
            self.peer_rtt_min = packet.meta["rtt_min"]
        if "ack_loss_rate" in packet.meta:
            self.peer_ack_loss_rate = packet.meta["ack_loss_rate"]
        if self._arrival_log is not None:
            self._arrival_log.append((now, packet.seq, packet.pkt_seq))
        # Timing and rate trackers see every arrival, duplicates included.
        if packet.sent_at is not None:
            self.owd.on_packet(packet.sent_at, now)
        gap = self.pkt_tracker.on_packet(packet.pkt_seq)
        # Clip below the consumption point: bytes the app already read
        # were removed from the interval set, so a stale retransmission
        # must not re-enter it (it would corrupt buffer accounting).
        clip_start = max(packet.seq, self.delivered_ptr)
        if clip_start < packet.end_seq():
            added = self.intervals.add(clip_start, packet.end_seq())
        else:
            added = 0
        self.stats.data_packets += 1
        if added == 0:
            self.stats.duplicate_packets += 1
        else:
            self.stats.bytes_received += added
            self.rate.on_data(added, now)
        in_order = False
        if self.intervals.first_missing(self.delivered_ptr) > self.delivered_ptr:
            in_order = packet.seq <= self.delivered_ptr
            if self.auto_drain:
                self._drain()
        self._track_buffer_peak()
        # Site-local stride counter: one event per data packet makes
        # this the receiver's hottest telemetry site, so dropped
        # events must not pay for a collector call.
        if self._tel_stride:
            n = self._tel_n + 1
            if n >= self._tel_stride:
                self._tel_n = 0
                self._tel.emit_kept("transport", "recv", self.flow_id,
                                    seq=packet.seq, pkt_seq=packet.pkt_seq,
                                    added=added)
            else:
                self._tel_n = n
        if gap is not None:
            self.stats.gap_events += 1
            if self._tel is not None:
                lo, hi = gap.missing_range()
                self._tel.emit("transport", "gap", self.flow_id,
                               lo=lo, hi=hi, missing=gap.missing_count)
            self.policy.on_gap(gap)
        if self._san is not None:
            self._san.on_receiver_data(self)
        self.policy.on_data(packet, in_order)
        self._check_window_events()

    # ------------------------------------------------------------------
    # application read side
    # ------------------------------------------------------------------
    def available_bytes(self) -> int:
        """In-order bytes ready for the application."""
        return self.intervals.first_missing(self.delivered_ptr) - self.delivered_ptr

    def read(self, nbytes: int) -> int:
        """Consume up to ``nbytes`` of in-order data; returns the
        amount actually read (slow-reader mode)."""
        take = min(nbytes, self.available_bytes())
        if take > 0:
            self._consume(take)
            self._check_window_events()
        return take

    def _drain(self) -> None:
        ready = self.available_bytes()
        if ready > 0:
            self._consume(ready)

    def _consume(self, nbytes: int) -> None:
        self.delivered_ptr += nbytes
        self.intervals.remove_below(self.delivered_ptr)
        self.stats.bytes_delivered += nbytes
        if self._tel_stride:
            n = self._tel_n + 1
            if n >= self._tel_stride:
                self._tel_n = 0
                self._tel.emit_kept("transport", "deliver", self.flow_id,
                                    nbytes=nbytes)
            else:
                self._tel_n = n
        if self._on_deliver is not None:
            self._on_deliver(nbytes, self.sim.now())

    # ------------------------------------------------------------------
    # window state
    # ------------------------------------------------------------------
    def buffered_bytes(self) -> int:
        """Bytes held in the receive buffer: in-order data the app has
        not read yet plus out-of-order data waiting for holes."""
        return self.intervals.covered()

    def holb_blocked_bytes(self) -> int:
        """Out-of-order bytes blocked behind the first hole."""
        return self.intervals.covered() - self.available_bytes()

    def awnd(self) -> int:
        """Advertised window: free receive-buffer space."""
        return max(0, self.rcv_buffer_bytes - self.intervals.covered())

    def _track_buffer_peak(self) -> None:
        buffered = self.intervals.covered()
        if buffered > self.stats.peak_buffered_bytes:
            self.stats.peak_buffered_bytes = buffered

    def _check_window_events(self) -> None:
        awnd = self.awnd()
        low = awnd < 2 * 1500
        if low and not self._window_was_low:
            self._window_was_low = True
            self.policy.on_window_event("zero_window")
        elif self._window_was_low and awnd > self.rcv_buffer_bytes // 4:
            self._window_was_low = False
            self.policy.on_window_event("window_open")

    # ------------------------------------------------------------------
    # feedback construction
    # ------------------------------------------------------------------
    def build_feedback(
        self,
        max_sack_blocks: int = 3,
        max_unacked_blocks: int = 0,
        include_timing: bool = False,
        include_rate: bool = False,
        pull_pkt_range: Optional[tuple[int, int]] = None,
        reason: Optional[str] = None,
        min_gap_age_s: float = 0.0,
    ) -> AckFeedback:
        """Snapshot reassembly state into feedback fields.

        ``max_sack_blocks`` caps the "acked list" (legacy SACK uses 3;
        rich TACKs may use more).  ``max_unacked_blocks`` caps the
        "unacked list" (the paper's Q).  Blocks are chosen per S5.1:
        highest-numbered acked blocks, lowest-numbered unacked blocks.
        """
        now = self.sim.now()
        cum_ack = self.intervals.first_missing(self.delivered_ptr)
        sack: list[tuple[int, int]] = []
        if max_sack_blocks > 0:
            above = [r for r in self.intervals.ranges() if r[1] > cum_ack]
            sack = above[-max_sack_blocks:]
        unacked: list[tuple[int, int]] = []
        if max_unacked_blocks > 0:
            # Clip gaps to [cum_ack, ...): everything below cum_ack was
            # consumed (removed from the interval set), not lost.  A
            # settling allowance (paper S7) suppresses gaps younger
            # than ``min_gap_age_s`` so mild reordering is not reported
            # as loss.
            current: set[int] = set()
            for start, end in self.intervals.gaps(self.intervals.max_end()):
                if end <= cum_ack:
                    continue
                gap = (max(start, cum_ack), end)
                current.add(gap[0])
                first_seen = self._gap_first_seen.setdefault(gap[0], now)
                if now - first_seen < min_gap_age_s:
                    continue
                if len(unacked) < max_unacked_blocks:
                    unacked.append(gap)
            for key in [k for k in self._gap_first_seen if k not in current]:
                del self._gap_first_seen[key]
        tack_delay = None
        echo_ts = None
        packet_delays = None
        if include_timing:
            ref = self.owd.take_reference()
            if ref is not None:
                echo_ts = ref.departure_ts
                if self.owd.mode != "naive":
                    # Explicit delay correction (paper Fig. 4(b)); the
                    # naive legacy sampling has no such field, so its
                    # RTT absorbs the receiver hold time.
                    tack_delay = now - ref.arrival_ts
            if self.owd.mode == "per-packet":
                # S4.3's high-overhead alternative: one (t0, delta-t)
                # entry per packet of the interval.
                packet_delays = self.owd.take_all_samples(now)
        delivery_rate_bps = None
        loss_rate = None
        if include_rate:
            self.rate.close_interval(now)
            bw_bps = self.rate.bw_bps(now)
            delivery_rate_bps = bw_bps if bw_bps > 0 else None
            loss_rate = self.pkt_tracker.loss_rate()
        return AckFeedback(
            cum_ack=cum_ack,
            awnd=self.awnd(),
            sack_blocks=sack,
            unacked_blocks=unacked,
            pull_pkt_range=pull_pkt_range,
            tack_delay=tack_delay,
            echo_departure_ts=echo_ts,
            delivery_rate_bps=delivery_rate_bps,
            rx_loss_rate=loss_rate,
            largest_pkt_seq=self.pkt_tracker.largest_seen,
            packet_delays=packet_delays,
            reason=reason,
        )

    def emit_feedback(self, kind: PacketType, fb: AckFeedback) -> None:
        """Send ``fb`` as a ``kind`` packet through the reverse path."""
        if self._port is None:
            return
        # Number every feedback, including ones the reverse port then
        # refuses: from the sender's side, feedback that never made the
        # wire *is* ACK-path loss.
        fb.fb_seq = self._fb_seq_next
        self._fb_seq_next += 1
        pkt = make_feedback_packet(kind, fb, flow_id=self.flow_id)
        pkt.sent_at = self.sim.now()
        if kind is PacketType.TACK:
            self.stats.tacks_sent += 1
        elif kind is PacketType.IACK:
            self.stats.iacks_sent += 1
        else:
            self.stats.acks_sent += 1
        if self._tel is not None:
            self._tel.emit("ack", kind.value, self.flow_id,
                           reason=fb.reason, cum_ack=fb.cum_ack,
                           sack=len(fb.sack_blocks),
                           unacked=len(fb.unacked_blocks), size=pkt.size)
        if self._diag is not None:
            self._diag.observe("ack", kind.value, self.flow_id,
                               reason=fb.reason, cum_ack=fb.cum_ack,
                               sack=len(fb.sack_blocks),
                               unacked=len(fb.unacked_blocks), size=pkt.size)
        if self._en is not None:
            self._en.on_feedback_emitted(self.flow_id, pkt.size)
        if self._port.send(pkt) is False:
            self.stats.feedback_send_failures += 1

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.policy.on_close()
        self.policy.detach()

    def __repr__(self) -> str:
        return (
            f"TransportReceiver(cum_ack={self.intervals.first_missing(self.delivered_ptr)}, "
            f"delivered={self.stats.bytes_delivered})"
        )
