"""Feedback carried by acknowledgments.

A single structure covers all five ACK flavors; unused fields stay
``None``.  The structure rides in ``Packet.meta["fb"]`` and its wire
cost is charged through :func:`feedback_wire_bytes` so that "rich" TACKs
pay for the blocks they carry (paper S4.4: more information increases
ACK *size*, never ACK *count*).
"""

from __future__ import annotations

import math
from typing import Any, Optional

from repro.transport.errors import FeedbackFormatError
from repro.netsim.packet import (
    ACK_PACKET_SIZE,
    DATA_PACKET_SIZE,
    Packet,
    PacketType,
    make_ack_packet,
)

BYTES_PER_BLOCK = 8
"""Wire cost of one (start, end) block, matching TCP SACK encoding."""

BYTES_PER_DELAY = 8
"""Wire cost of one per-packet (timestamp, delay) entry (S4.3's
rejected alternative)."""

FREE_BLOCKS = 3
"""Blocks that fit the base 64-byte ACK (TCP fits 3-4 SACK blocks)."""


class AckFeedback:
    """Transport feedback for the sender.

    Attributes
    ----------
    cum_ack:
        Next expected in-order byte (cumulative acknowledgment).
    awnd:
        Receiver's advertised window in bytes.
    sack_blocks:
        Received out-of-order byte ranges ``[(start, end), ...]``
        (end exclusive).  Legacy ACKs cap this at 3; rich TACKs may
        carry many (the paper's "acked list").
    unacked_blocks:
        Byte ranges the receiver is still missing below its highest
        received byte (the paper's "unacked list"); rich TACKs repeat
        these so loss notifications survive ACK-path loss.
    pull_pkt_range:
        ``(second_largest_pkt_seq, largest_pkt_seq)`` from a
        loss-event IACK: everything strictly between them is missing
        in PKT.SEQ space and should be retransmitted (paper S5.1).
    tack_delay:
        Delay between receipt of the timing reference packet and this
        feedback's departure (paper Fig. 4(b)).
    echo_departure_ts:
        Departure timestamp of the timing reference packet, echoed
        back so the sender can form one RTT sample.
    delivery_rate_bps:
        Receiver-measured delivery rate over the last TACK interval
        (receiver-based rate control, paper S5.3).
    rx_loss_rate:
        Receiver-measured data-path loss rate over the last interval.
    largest_pkt_seq:
        Highest PKT.SEQ seen by the receiver (receipt horizon).
    packet_delays:
        Optional per-packet ``(departure_ts, delay)`` samples — the
        high-overhead alternative the paper describes and rejects in
        S4.3 ("the overhead is high...").  Each entry costs
        :data:`BYTES_PER_DELAY` wire bytes; implemented for the
        overhead-vs-accuracy ablation.
    reason:
        Trigger label for IACKs (``"loss"``, ``"window"``,
        ``"rttmin"``); diagnostic only.
    fb_seq:
        Feedback sequence number: the receiver numbers every feedback
        packet it emits (all flavors share one counter).  Gaps in the
        sequence observed by the sender measure ACK-path loss exactly,
        the way QUIC infers loss from packet-number holes — no guess
        about the expected feedback rate is needed, so the estimate
        stays zero for app-limited flows.
    """

    __slots__ = (
        "cum_ack",
        "awnd",
        "sack_blocks",
        "unacked_blocks",
        "pull_pkt_range",
        "tack_delay",
        "echo_departure_ts",
        "delivery_rate_bps",
        "rx_loss_rate",
        "largest_pkt_seq",
        "packet_delays",
        "reason",
        "fb_seq",
    )

    def __init__(
        self,
        cum_ack: int,
        awnd: int,
        sack_blocks: Optional[list[tuple[int, int]]] = None,
        unacked_blocks: Optional[list[tuple[int, int]]] = None,
        pull_pkt_range: Optional[tuple[int, int]] = None,
        tack_delay: Optional[float] = None,
        echo_departure_ts: Optional[float] = None,
        delivery_rate_bps: Optional[float] = None,
        rx_loss_rate: Optional[float] = None,
        largest_pkt_seq: Optional[int] = None,
        packet_delays: Optional[list[tuple[float, float]]] = None,
        reason: Optional[str] = None,
        fb_seq: Optional[int] = None,
    ):
        self.cum_ack = cum_ack
        self.awnd = awnd
        self.sack_blocks = sack_blocks or []
        self.unacked_blocks = unacked_blocks or []
        self.pull_pkt_range = pull_pkt_range
        self.tack_delay = tack_delay
        self.echo_departure_ts = echo_departure_ts
        self.delivery_rate_bps = delivery_rate_bps
        self.rx_loss_rate = rx_loss_rate
        self.largest_pkt_seq = largest_pkt_seq
        self.packet_delays = packet_delays or []
        self.reason = reason
        self.fb_seq = fb_seq

    def block_count(self) -> int:
        return len(self.sack_blocks) + len(self.unacked_blocks)

    def __repr__(self) -> str:
        return (
            f"AckFeedback(cum_ack={self.cum_ack}, awnd={self.awnd}, "
            f"sack={len(self.sack_blocks)}, unacked={len(self.unacked_blocks)}, "
            f"reason={self.reason})"
        )


def clone_feedback(fb: AckFeedback) -> AckFeedback:
    """Field-by-field copy (block lists copied, not shared).

    Used by the feedback guard to sanitize a frame without mutating
    the receiver's object, and by adversary models / the fuzzer to
    mutate or replay a frame without corrupting the original.
    """
    return AckFeedback(
        cum_ack=fb.cum_ack,
        awnd=fb.awnd,
        sack_blocks=list(fb.sack_blocks),
        unacked_blocks=list(fb.unacked_blocks),
        pull_pkt_range=fb.pull_pkt_range,
        tack_delay=fb.tack_delay,
        echo_departure_ts=fb.echo_departure_ts,
        delivery_rate_bps=fb.delivery_rate_bps,
        rx_loss_rate=fb.rx_loss_rate,
        largest_pkt_seq=fb.largest_pkt_seq,
        packet_delays=list(fb.packet_delays),
        reason=fb.reason,
        fb_seq=fb.fb_seq,
    )


def _require_int(field: str, value: Any) -> None:
    # bool is an int subclass but an awnd of True is garbage, not a
    # window; reject it explicitly.
    if not isinstance(value, int) or isinstance(value, bool):
        raise FeedbackFormatError(field, f"expected int, got {value!r}")


def _require_real(field: str, value: Any) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise FeedbackFormatError(field, f"expected number, got {value!r}")
    if not math.isfinite(value):
        raise FeedbackFormatError(field, f"non-finite value {value!r}")


def _require_pair_list(field: str, value: Any, kind) -> None:
    if not isinstance(value, (list, tuple)):
        raise FeedbackFormatError(field, f"expected list, got {value!r}")
    for entry in value:
        if not isinstance(entry, (tuple, list)) or len(entry) != 2:
            raise FeedbackFormatError(field, f"expected 2-tuples, got {entry!r}")
        for part in entry:
            kind(field, part)


def check_wire_form(fb: Any) -> AckFeedback:
    """Structural validation of a decoded feedback frame.

    Returns ``fb`` unchanged when every field has the declared wire
    shape (see :class:`AckFeedback`); raises
    :class:`~repro.transport.errors.FeedbackFormatError` naming the
    first offending field otherwise.  *Values* are not judged here —
    an in-range type-correct lie (an optimistic ``cum_ack``, a
    replayed ``fb_seq``) is the feedback guard's job
    (:mod:`repro.transport.guard`); this function only guarantees the
    sender can consume the frame without a ``TypeError`` escaping the
    event loop.
    """
    if not isinstance(fb, AckFeedback):
        raise FeedbackFormatError("fb", f"expected AckFeedback, got {type(fb).__name__}")
    _require_int("cum_ack", fb.cum_ack)
    _require_int("awnd", fb.awnd)
    _require_pair_list("sack_blocks", fb.sack_blocks, _require_int)
    _require_pair_list("unacked_blocks", fb.unacked_blocks, _require_int)
    if fb.pull_pkt_range is not None:
        _require_pair_list("pull_pkt_range", [fb.pull_pkt_range], _require_int)
    for field in ("tack_delay", "echo_departure_ts", "delivery_rate_bps",
                  "rx_loss_rate"):
        value = getattr(fb, field)
        if value is not None:
            _require_real(field, value)
    if fb.largest_pkt_seq is not None:
        _require_int("largest_pkt_seq", fb.largest_pkt_seq)
    _require_pair_list("packet_delays", fb.packet_delays, _require_real)
    if fb.reason is not None and not isinstance(fb.reason, str):
        raise FeedbackFormatError("reason", f"expected str, got {fb.reason!r}")
    if fb.fb_seq is not None:
        _require_int("fb_seq", fb.fb_seq)
    return fb


def feedback_wire_bytes(fb: AckFeedback) -> int:
    """Wire size of an acknowledgment carrying ``fb``.

    The first :data:`FREE_BLOCKS` blocks ride in the base 64-byte ACK;
    each additional block costs :data:`BYTES_PER_BLOCK`, capped at one
    MTU (a TACK cannot exceed a full-sized frame, paper S5.1).
    """
    extra_blocks = max(0, fb.block_count() - FREE_BLOCKS)
    extra = (extra_blocks * BYTES_PER_BLOCK
             + len(fb.packet_delays) * BYTES_PER_DELAY)
    return min(ACK_PACKET_SIZE + extra, DATA_PACKET_SIZE)


def make_feedback_packet(kind: PacketType, fb: AckFeedback, flow_id: int = 0) -> Packet:
    """Wrap ``fb`` in a wire packet of the right size."""
    pkt = make_ack_packet(
        kind=kind,
        extra_bytes=feedback_wire_bytes(fb) - ACK_PACKET_SIZE,
        flow_id=flow_id,
    )
    pkt.meta["fb"] = fb
    return pkt
