"""Reliable byte-stream transport engine.

The engine factors legacy TCP and TCP-TACK into shared machinery
(sequencing, windows, retransmission, pacing) plus three pluggable
strategies:

* the receiver's **ACK policy** (:mod:`repro.ack`) decides *when* to
  acknowledge and *what* feedback to carry;
* the sender's **loss detector** decides *which* packets to
  retransmit (dupACK+RACK for legacy, receiver pull for TACK);
* the **congestion controller** (:mod:`repro.cc`) decides *how fast*
  to send.

``Connection`` wires a :class:`~repro.transport.sender.TransportSender`
and a :class:`~repro.transport.receiver.TransportReceiver` across any
pair of netsim ports.
"""

from repro.transport.connection import Connection, ConnectionConfig
from repro.transport.errors import FeedbackFormatError
from repro.transport.feedback import AckFeedback, check_wire_form, clone_feedback
from repro.transport.guard import FeedbackValidator, GuardConfig
from repro.transport.receiver import TransportReceiver
from repro.transport.sender import TransportSender

__all__ = [
    "AckFeedback",
    "Connection",
    "ConnectionConfig",
    "FeedbackFormatError",
    "FeedbackValidator",
    "GuardConfig",
    "TransportReceiver",
    "TransportSender",
    "check_wire_form",
    "clone_feedback",
]
