"""Tests for the binary telemetry plane (``repro.telemetry.binlog``).

The load-bearing invariant: a binary trace converted offline must be
*byte-identical* to what a live ``JsonlSink`` would have written for
the same event stream, so every JSONL consumer (summarize / filter /
diff, MetricsRegistry replays, the fig08 Eq. (3) re-derivation) works
unchanged on converted traces.
"""

import hashlib
import random
import struct

import pytest

from repro.core.flavors import make_connection
from repro.netsim.engine import Simulator
from repro.netsim.paths import wired_path
from repro.telemetry import (
    ALWAYS_ON_SAMPLING,
    BinaryFileSink,
    BinaryRingSink,
    JsonlSink,
    MemorySink,
    TraceCollector,
    TraceEvent,
    always_on_collector,
    convert_binary_trace,
    read_trace,
)
from repro.telemetry.binlog import BinaryFormatError, StringTable
from repro.telemetry.cli import main as telemetry_cli


def _sha256(path):
    with open(path, "rb") as fh:
        return hashlib.sha256(fh.read()).hexdigest()


def _seeded_run(collector, seed=11, until_s=0.4):
    sim = Simulator(seed=seed, telemetry=collector)
    path = wired_path(sim, 20e6, 0.04)
    conn = make_connection(sim, "tcp-tack", initial_rtt_s=0.04)
    conn.wire(path.forward, path.reverse)
    conn.start_bulk()
    sim.run(until=until_s)
    return conn.receiver.stats.bytes_delivered


def _synthetic_events(n=400, seed=0):
    """Deterministic event stream exercising every field type the
    binary format encodes (and some it must fall back to JSON for)."""
    rng = random.Random(seed)
    names = ["send", "recv", "deliver", "gap", "rare-%d"]
    events = []
    t = 0.0
    for i in range(n):
        t += rng.random() * 1e-3
        pick = rng.randrange(6)
        if pick == 0:
            fields = {"seq": rng.randrange(1 << 40), "length": 1500,
                      "neg": -rng.randrange(1 << 20)}
        elif pick == 1:
            fields = {"srtt_s": rng.random() * 0.2, "ok": bool(i % 2)}
        elif pick == 2:
            fields = {"reason": rng.choice(["periodic", "loss", "quota"]),
                      "note": "x" * rng.randrange(0, 64)}
        elif pick == 3:
            fields = {"huge": (1 << 63) + i}       # out of i64 range
        elif pick == 4:
            fields = {"nested": {"a": i}}          # non-scalar
        else:
            fields = {}
        name = names[rng.randrange(len(names))]
        if "%d" in name:
            name = name % rng.randrange(200)       # stresses interning
        events.append(TraceEvent(t, rng.choice(["transport", "ack", "cc"]),
                                 name, rng.randrange(4), fields))
    return events


class TestRoundTrip:
    def test_full_fidelity_digest_identity(self, tmp_path):
        jp = str(tmp_path / "live.jsonl")
        bp = str(tmp_path / "run.rtb")
        cp = str(tmp_path / "converted.jsonl")
        jcol = TraceCollector(JsonlSink(jp))
        bcol = TraceCollector(BinaryFileSink(bp))
        assert _seeded_run(jcol) == _seeded_run(bcol)
        assert jcol.events_emitted == bcol.events_emitted > 500
        jcol.close()
        bcol.close()
        stats = convert_binary_trace(bp, cp)
        assert stats["events"] == bcol.events_emitted
        assert _sha256(jp) == _sha256(cp) == stats["digest"]
        with open(jp, "rb") as a, open(cp, "rb") as b:
            assert a.read() == b.read()

    def test_sampled_run_digest_identity(self, tmp_path):
        jp = str(tmp_path / "live.jsonl")
        bp = str(tmp_path / "run.rtb")
        cp = str(tmp_path / "converted.jsonl")
        jcol = TraceCollector(JsonlSink(jp), sampling=ALWAYS_ON_SAMPLING)
        bcol = TraceCollector(BinaryFileSink(bp), sampling=ALWAYS_ON_SAMPLING)
        assert _seeded_run(jcol) == _seeded_run(bcol)
        assert jcol.events_emitted == bcol.events_emitted > 0
        jcol.close()
        bcol.close()
        convert_binary_trace(bp, cp)
        assert _sha256(jp) == _sha256(cp)

    def test_synthetic_stream_property_roundtrip(self, tmp_path):
        """Property-style sweep over field-type combinations: every
        generated stream must convert byte-for-byte, with non-scalar
        and out-of-range fields surviving via the JSON fallback."""
        for seed in range(5):
            events = _synthetic_events(seed=seed)
            jp = str(tmp_path / f"live-{seed}.jsonl")
            bp = str(tmp_path / f"run-{seed}.rtb")
            cp = str(tmp_path / f"conv-{seed}.jsonl")
            jsink = JsonlSink(jp, meta={"seed": seed})
            bsink = BinaryFileSink(bp, meta={"seed": seed})
            for e in events:
                jsink.append(e)
                bsink.append(e)
            jsink.close()
            bsink.close()
            assert bsink.fallback_events > 0  # huge ints + nested dicts
            convert_binary_trace(bp, cp)
            assert _sha256(jp) == _sha256(cp)
            header, decoded = read_trace(cp)
            assert header["meta"]["seed"] == seed
            assert decoded == events

    def test_interning_overflow_falls_back_not_drops(self, tmp_path):
        jp = str(tmp_path / "live.jsonl")
        bp = str(tmp_path / "run.rtb")
        cp = str(tmp_path / "conv.jsonl")
        events = [TraceEvent(i * 1e-3, "transport", f"name-{i}", 0,
                             {"reason": f"reason-{i}"})
                  for i in range(64)]
        jsink = JsonlSink(jp)
        bsink = BinaryFileSink(bp, max_interned=8)
        for e in events:
            jsink.append(e)
            bsink.append(e)
        jsink.close()
        bsink.close()
        assert bsink.fallback_events > 0
        assert bsink.events_written == len(events)
        convert_binary_trace(bp, cp)
        assert _sha256(jp) == _sha256(cp)


class TestRingSink:
    def test_wrap_retains_newest_tail(self):
        events = [TraceEvent(i * 1e-3, "transport", "send", 0,
                             {"seq": i, "length": 1500})
                  for i in range(200)]
        ring = BinaryRingSink(capacity_bytes=2048)
        for e in events:
            ring.append(e)
        kept = ring.events()
        assert 0 < len(kept) < len(events)
        assert kept == events[-len(kept):]
        assert ring.appended == len(events)
        assert ring.evicted == len(events) - len(kept)
        assert ring.used_bytes <= ring.capacity_bytes

    def test_evicted_contract_mirrors_memory_sink(self):
        """Same ring-bound surface (appended / evicted / len /
        events()-tail) as MemorySink, so runner code is sink-agnostic."""
        events = [TraceEvent(i * 1e-3, "ack", "tack", 0, {"cum_ack": i})
                  for i in range(50)]
        ring = BinaryRingSink(capacity_bytes=1 << 16, max_events=16)
        mem = MemorySink(max_events=16)
        for e in events:
            ring.append(e)
            mem.append(e)
        assert len(ring) == len(mem) == 16
        assert ring.appended == mem.appended == 50
        assert ring.evicted == mem.evicted == 34
        assert ring.events() == mem.events() == events[-16:]
        ring.clear()
        mem.clear()
        assert len(ring) == len(mem) == 0
        assert ring.evicted == mem.evicted == 50  # appended survives clear

    def test_interning_table_survives_eviction(self):
        """Wrapped-out records must stay decodable: the interning
        table lives outside the ring and is never evicted."""
        ring = BinaryRingSink(capacity_bytes=1024)
        for i in range(300):
            ring.append(TraceEvent(i * 1e-3, "transport",
                                   f"kind-{i % 7}", i % 3, {"seq": i}))
        for e in ring.events():
            assert e.name.startswith("kind-")

    def test_oversized_record_rejected(self):
        ring = BinaryRingSink(capacity_bytes=64)
        # a non-scalar field forces the JSON fallback record, whose
        # size scales with the payload and cannot fit a 64-byte ring
        with pytest.raises(ValueError, match="exceeds ring capacity"):
            ring.append(TraceEvent(0.0, "transport", "blob", 0,
                                   {"nested": {"note": "y" * 4096}}))

    def test_always_on_collector_samples_into_ring(self):
        collector = always_on_collector()
        delivered = _seeded_run(collector)
        assert delivered > 0
        assert isinstance(collector.sink, BinaryRingSink)
        assert 0 < collector.events_emitted
        assert collector.sink.appended == collector.events_emitted


class TestTruncationAndCli:
    def _binary_trace(self, tmp_path, name="t.rtb"):
        bp = str(tmp_path / name)
        col = TraceCollector(BinaryFileSink(bp))
        _seeded_run(col, until_s=0.2)
        col.close()
        return bp

    def test_truncated_trace_detected(self, tmp_path):
        bp = self._binary_trace(tmp_path)
        with open(bp, "rb") as fh:
            raw = fh.read()
        tp = str(tmp_path / "trunc.rtb")
        with open(tp, "wb") as fh:
            fh.write(raw[:len(raw) - 40])
        with pytest.raises(BinaryFormatError):
            convert_binary_trace(tp, str(tmp_path / "out.jsonl"))
        # salvage path: an explicit opt-out recovers the whole events
        stats = convert_binary_trace(tp, str(tmp_path / "out.jsonl"),
                                     require_trailer=False)
        assert stats["events"] > 0

    def test_convert_cli_exit_codes(self, tmp_path, capsys):
        bp = self._binary_trace(tmp_path)
        out = str(tmp_path / "out.jsonl")
        assert telemetry_cli(["convert", bp, out]) == 0
        assert "sha256=" in capsys.readouterr().out
        assert telemetry_cli(
            ["convert", str(tmp_path / "missing.rtb")]) == 2
        with open(bp, "rb") as fh:
            raw = fh.read()
        tp = str(tmp_path / "trunc.rtb")
        with open(tp, "wb") as fh:
            fh.write(raw[:len(raw) - 40])
        assert telemetry_cli(["convert", tp, out]) == 2
        assert telemetry_cli(
            ["convert", tp, out, "--allow-truncated"]) == 0

    @pytest.mark.parametrize("command", ["summarize", "filter", "diff"])
    def test_jsonl_commands_reject_binary_with_hint(
            self, tmp_path, capsys, command):
        bp = self._binary_trace(tmp_path)
        argv = [command, bp] + ([bp] if command == "diff" else [])
        assert telemetry_cli(argv) == 2
        err = capsys.readouterr().err
        assert "convert" in err
        assert "binary trace" in err

    def test_jsonl_commands_reject_garbage(self, tmp_path, capsys):
        gp = str(tmp_path / "garbage.jsonl")
        with open(gp, "wb") as fh:
            fh.write(b"\x00\xff\x80garbage" * 16)
        assert telemetry_cli(["summarize", gp]) == 2
        assert "not a text trace" in capsys.readouterr().err

    def test_summarize_after_convert_matches_live(self, tmp_path, capsys):
        bp = self._binary_trace(tmp_path)
        jp = str(tmp_path / "live.jsonl")
        col = TraceCollector(JsonlSink(jp))
        _seeded_run(col, until_s=0.2)
        col.close()
        cp = str(tmp_path / "conv.jsonl")
        assert telemetry_cli(["convert", bp, cp]) == 0
        capsys.readouterr()
        assert telemetry_cli(["summarize", cp, "--json"]) == 0
        conv_out = capsys.readouterr().out
        assert telemetry_cli(["summarize", jp, "--json"]) == 0
        live_out = capsys.readouterr().out
        # identical but for the trace path line
        assert (conv_out.replace(cp, "X")
                == live_out.replace(jp, "X"))

class TestCorruptRecords:
    """Corrupt payload bytes must surface as ``BinaryFormatError`` —
    never as a bare ``IndexError`` / ``UnicodeDecodeError`` escaping
    the decoder's guts into the CLI."""

    def _raw_trace(self, tmp_path):
        bp = str(tmp_path / "t.rtb")
        col = TraceCollector(BinaryFileSink(bp))
        _seeded_run(col, until_s=0.2)
        col.close()
        with open(bp, "rb") as fh:
            return fh.read()

    @staticmethod
    def _first_record_offset(raw):
        # preamble (magic + version, 10 bytes), u32 header length, line
        (hdr_len,) = struct.unpack_from("<I", raw, 10)
        return 10 + 4 + hdr_len

    def test_unknown_string_id_is_format_error(self):
        table = StringTable()
        table.intern("only-entry")
        with pytest.raises(BinaryFormatError, match="unknown string id"):
            table.lookup(99)

    def test_undecodable_string_bytes_are_format_error(self, tmp_path):
        raw = bytearray(self._raw_trace(tmp_path))
        first = self._first_record_offset(raw)
        assert raw[first] == 0x01  # RT_STRING interning record
        # clobber the payload's first byte with an invalid UTF-8 start
        raw[first + 9] = 0xFF
        cp = str(tmp_path / "corrupt.rtb")
        with open(cp, "wb") as fh:
            fh.write(bytes(raw))
        with pytest.raises(BinaryFormatError, match="undecodable string"):
            convert_binary_trace(cp, str(tmp_path / "out.jsonl"))

    def test_header_only_salvage_is_empty_valid_trace(self, tmp_path,
                                                      capsys):
        raw = self._raw_trace(tmp_path)
        hp = str(tmp_path / "header-only.rtb")
        with open(hp, "wb") as fh:
            fh.write(raw[:self._first_record_offset(raw)])
        out = str(tmp_path / "empty.jsonl")
        assert telemetry_cli(["convert", hp, out,
                              "--allow-truncated"]) == 0
        capsys.readouterr()
        header, events = read_trace(out)
        assert events == []
        assert header["schema"] == "repro-telemetry"
