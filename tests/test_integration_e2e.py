"""End-to-end integration tests: full connections over impaired paths.

Every scheme x impairment combination must deliver the byte stream
completely and in order — the core reliability invariant.
"""

import pytest

from repro.netsim.loss import BurstLoss, GilbertElliottLoss, PatternLoss
from repro.netsim.packet import MSS

from conftest import build_wired_connection

ALL_SCHEMES = [
    "tcp-tack",
    "tcp-tack-poor",
    "tcp-tack-poor-literal",
    "tcp-tack-adaptive",
    "tcp-tack-cubic",
    "tcp-tack-compound",
    "tcp-tack-naive-timing",
    "tcp-tack-perpacket-timing",
    "tcp-bbr",
    "tcp-cubic",
    "tcp-reno",
    "tcp-vegas",
    "tcp-compound",
    "tcp-bbr-perpacket",
    "tcp-bbr-l4",
    "tcp-bbr-l8",
    "tcp-bbr-l16",
]


class TestReliableDelivery:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_fixed_transfer_completes_lossless(self, sim, scheme):
        conn, _ = build_wired_connection(sim, scheme, rate_bps=20e6, rtt_s=0.02)
        conn.start_transfer(300 * MSS)
        sim.run(until=10.0)
        assert conn.completed
        assert conn.receiver.stats.bytes_delivered == 300 * MSS

    @pytest.mark.parametrize("scheme", ["tcp-tack", "tcp-bbr", "tcp-cubic"])
    def test_fixed_transfer_completes_with_loss(self, sim, scheme):
        conn, _ = build_wired_connection(
            sim, scheme, rate_bps=20e6, rtt_s=0.05, data_loss=0.02, ack_loss=0.02
        )
        conn.start_transfer(300 * MSS)
        sim.run(until=30.0)
        assert conn.completed, f"{scheme} did not finish under 2% loss"
        assert conn.receiver.stats.bytes_delivered == 300 * MSS

    @pytest.mark.parametrize("scheme", ["tcp-tack", "tcp-bbr"])
    def test_survives_burst_blackout(self, sim, scheme):
        conn, _ = build_wired_connection(
            sim, scheme, rate_bps=10e6, rtt_s=0.04,
            forward_loss=BurstLoss([(1.0, 0.3)]),
        )
        conn.start_transfer(500 * MSS)
        sim.run(until=30.0)
        assert conn.completed
        assert conn.receiver.stats.bytes_delivered == 500 * MSS

    @pytest.mark.parametrize("scheme", ["tcp-tack", "tcp-bbr"])
    def test_survives_gilbert_elliott(self, sim, scheme):
        conn, _ = build_wired_connection(
            sim, scheme, rate_bps=10e6, rtt_s=0.04,
            forward_loss=GilbertElliottLoss(
                p_gb=0.005, p_bg=0.3, rng=sim.fork_rng("ge")
            ),
        )
        conn.start_transfer(300 * MSS)
        sim.run(until=30.0)
        assert conn.completed

    def test_single_loss_recovers_via_iack_without_rto(self, sim):
        conn, _ = build_wired_connection(
            sim, "tcp-tack", rate_bps=10e6, rtt_s=0.05,
            forward_loss=PatternLoss([20]),
            queue_bytes=3 * 62_500,  # room for the BBR startup overshoot
        )
        conn.start_transfer(100 * MSS)
        sim.run(until=10.0)
        assert conn.completed
        assert conn.sender.stats.rtos == 0
        assert conn.sender.stats.retransmissions <= 2
        assert conn.receiver.stats.iacks_sent >= 1

    def test_tack_ack_path_blackout_recovered_by_rich_tacks(self, sim):
        conn, _ = build_wired_connection(
            sim, "tcp-tack", rate_bps=10e6, rtt_s=0.05,
            data_loss=0.01,
            reverse_loss=BurstLoss([(1.0, 0.5)]),
        )
        conn.start_transfer(400 * MSS)
        sim.run(until=30.0)
        assert conn.completed


class TestByteStreamIntegrity:
    def test_no_gap_ever_delivered(self, sim):
        """Delivered byte count only grows by contiguous amounts."""
        conn, _ = build_wired_connection(
            sim, "tcp-tack", rate_bps=10e6, rtt_s=0.05, data_loss=0.05
        )
        progression = []
        conn.receiver.on_deliver(lambda n, t: progression.append(n))
        conn.start_transfer(200 * MSS)
        sim.run(until=30.0)
        assert conn.completed
        assert sum(progression) == 200 * MSS
        # receiver's cum point equals total: nothing skipped
        assert conn.receiver.delivered_ptr == 200 * MSS


class TestAckEconomy:
    def test_tack_sends_far_fewer_acks_than_delayed(self, sim):
        tack, _ = build_wired_connection(sim, "tcp-tack", rate_bps=50e6, rtt_s=0.08)
        tack.start_bulk()
        sim.run(until=5.0)
        tack_acks = tack.ack_count()
        tack_data = tack.sender.stats.data_packets_sent

        from repro.netsim.engine import Simulator
        sim2 = Simulator(seed=42)
        bbr, _ = build_wired_connection(sim2, "tcp-bbr", rate_bps=50e6, rtt_s=0.08)
        bbr.start_bulk()
        sim2.run(until=5.0)

        assert tack_acks < 0.1 * bbr.ack_count()
        # similar goodput
        assert tack.receiver.stats.bytes_delivered > 0.9 * bbr.receiver.stats.bytes_delivered
        # paper S6.3: acks/data ~ 1.9% for TACK in periodic regime
        assert tack_acks / tack_data < 0.05

    def test_tack_frequency_respects_eq3_bound(self, sim):
        """Periodic regime: TACK count <= beta/RTT_min * duration plus
        slack for IACKs and startup."""
        conn, _ = build_wired_connection(sim, "tcp-tack", rate_bps=100e6, rtt_s=0.1)
        conn.start_bulk()
        sim.run(until=5.0)
        bound = 4.0 / 0.1 * 5.0
        assert conn.receiver.stats.tacks_sent <= bound * 1.25


class TestFlavors:
    def test_unknown_scheme_rejected(self, sim):
        from repro.core.flavors import make_connection
        with pytest.raises(KeyError):
            make_connection(sim, "tcp-nonsense")

    def test_scheme_composition_tack(self, sim):
        from repro.core.flavors import make_connection
        conn = make_connection(sim, "tcp-tack")
        assert conn.sender.receiver_driven
        assert conn.sender.use_receiver_rate
        assert conn.receiver.policy.name == "tack"

    def test_scheme_composition_legacy(self, sim):
        from repro.core.flavors import make_connection
        conn = make_connection(sim, "tcp-bbr")
        assert not conn.sender.receiver_driven
        assert conn.receiver.policy.name == "delayed"

    def test_tack_poor_q1(self, sim):
        from repro.core.flavors import make_connection
        conn = make_connection(sim, "tcp-tack-poor")
        assert not conn.receiver.policy.params.rich
