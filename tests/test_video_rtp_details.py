"""Additional tests for the RTP/UDP video path and the UDP blaster's
sequencing (deliberately unreliable workloads)."""

import pytest

from repro.app.udp_blast import UdpBlaster
from repro.app.video import RtpUdpVideoSession
from repro.netsim.paths import wired_path, wlan_path


class TestRtpUdpSession:
    def test_lossless_path_no_macroblocking(self, sim):
        # Queue must absorb one whole frame burst (each frame is sent
        # back to back as ~56 datagrams).
        path = wired_path(sim, 200e6, 0.002, queue_bytes=1_000_000)
        v = RtpUdpVideoSession(sim, path, bitrate_bps=20e6)
        v.start()
        sim.run(until=5.0)
        stats = v.finish()
        assert stats.frames_macroblocked == 0
        assert stats.frames_played > 100

    def test_lossy_path_macroblocks_proportionally(self, sim):
        from repro.netsim.loss import BernoulliLoss

        path = wired_path(sim, 200e6, 0.002, queue_bytes=1_000_000,
                          forward_loss=BernoulliLoss(0.01, sim.fork_rng("v")))
        v = RtpUdpVideoSession(sim, path, bitrate_bps=20e6)
        v.start()
        sim.run(until=10.0)
        stats = v.finish()
        # ~56 datagrams per frame at 1% independent loss:
        # P(macroblock) = 1 - 0.99^56 ~= 0.43.
        ratio = stats.frames_macroblocked / stats.frames_played
        assert ratio == pytest.approx(1 - 0.99 ** 56, abs=0.12)

    def test_overload_never_stalls_only_corrupts(self, sim):
        """RTP pushes on regardless of capacity: zero rebuffering, but
        heavy frame corruption when the channel can't keep up."""
        path = wlan_path(sim, "802.11g")  # ~25 Mbps capacity
        v = RtpUdpVideoSession(sim, path, bitrate_bps=80e6)
        v.start()
        sim.run(until=5.0)
        stats = v.finish()
        assert stats.stall_time_s == pytest.approx(0.0)
        assert stats.frames_macroblocked > 0.5 * stats.frames_played


class TestUdpBlasterSequencing:
    def test_packet_numbers_monotone(self, sim):
        path = wired_path(sim, 1e9, 0.0)
        seen = []
        path.forward.connect(lambda p: seen.append(p.pkt_seq))
        blaster = UdpBlaster(sim, path.forward, rate_bps=50e6)
        blaster.start()
        sim.run(until=0.05)
        blaster.stop()
        assert seen == sorted(seen)
        assert len(set(seen)) == len(seen)

    def test_interval_matches_rate(self, sim):
        path = wired_path(sim, 1e9, 0.0)
        blaster = UdpBlaster(sim, path.forward, rate_bps=12.144e6)
        # 1518 B at 12.144 Mbps -> exactly 1 ms per packet.
        assert blaster.interval_s == pytest.approx(1e-3)

    def test_stop_is_idempotent(self, sim):
        path = wired_path(sim, 1e9, 0.0)
        blaster = UdpBlaster(sim, path.forward, rate_bps=10e6)
        blaster.start()
        sim.run(until=0.01)
        blaster.stop()
        blaster.stop()
        count = blaster.packets_sent
        sim.run(until=0.05)
        assert blaster.packets_sent == count
