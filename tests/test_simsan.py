"""simsan: enablement plumbing, each invariant trips on a broken flow,
and clean runs stay clean under the sanitizer."""

import pytest

from repro import sanitize
from repro.ack import DelayedAck
from repro.cc import NewReno
from repro.netsim.engine import Simulator
from repro.netsim.packet import MSS
from repro.netsim.paths import wired_path
from repro.sanitize import InvariantViolation, SimSanitizer
from repro.transport.connection import Connection, ConnectionConfig


def make_conn(sim, **cfg):
    path = wired_path(sim, 20e6, 0.04)
    return Connection(sim, NewReno(), DelayedAck(),
                      config=ConnectionConfig(**cfg),
                      forward_port=path.forward,
                      reverse_port=path.reverse)


def run_transfer(sim, conn, nbytes=50 * MSS, until=5.0):
    conn.start_transfer(nbytes)
    sim.run(until=until)
    assert conn.completed
    return conn


class TestEnablement:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIMSAN", raising=False)
        assert Simulator(seed=1).san is None

    def test_env_var_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIMSAN", "1")
        assert sanitize.env_enabled()
        assert isinstance(Simulator(seed=1).san, SimSanitizer)

    def test_env_falsy_values(self, monkeypatch):
        for value in ("0", "off", "no", ""):
            monkeypatch.setenv("REPRO_SIMSAN", value)
            assert Simulator(seed=1).san is None, value

    def test_constructor_flag_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIMSAN", "1")
        assert Simulator(seed=1, simsan=False).san is None
        monkeypatch.delenv("REPRO_SIMSAN")
        assert Simulator(seed=1, simsan=True).san is not None

    def test_connection_config_flag(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIMSAN", raising=False)
        sim = Simulator(seed=1)
        conn = make_conn(sim, simsan=True)
        assert sim.san is not None
        assert conn.sender in sim.san._senders
        assert sim.san._peer_sender[conn.receiver] is conn.sender

    def test_enable_sanitizer_idempotent(self):
        sim = Simulator(seed=1, simsan=True)
        first = sim.san
        sim.enable_sanitizer()
        assert sim.san is first


class TestViolationObject:
    def test_structured_fields_and_message(self):
        sim = Simulator(seed=1, simsan=True)
        sim.san.on_event(2.0)
        with pytest.raises(InvariantViolation) as exc_info:
            sim.san.on_event(1.0)
        err = exc_info.value
        assert err.invariant == "event_clock"
        assert err.flow_id is None
        assert isinstance(err.sim_time, float)
        assert "[simsan] event_clock violated at t=" in str(err)
        assert isinstance(err, AssertionError)


class TestInvariantsTrip:
    """Each invariant fires when the corresponding state is corrupted.

    Corruptions poke endpoint internals directly — the point is that
    the sanitizer notices a broken simulator, using a deliberately
    broken one."""

    def setup_conn(self):
        sim = Simulator(seed=7, simsan=True)
        conn = make_conn(sim)
        run_transfer(sim, conn)
        return sim, conn

    def test_event_clock_rejects_bad_instants(self):
        sim = Simulator(seed=1, simsan=True)
        with pytest.raises(InvariantViolation, match="event_clock"):
            sim.san.on_event(-0.5)
        with pytest.raises(InvariantViolation, match="event_clock"):
            sim.san.on_event(float("nan"))

    def test_pkt_seq_monotone(self):
        sim, conn = self.setup_conn()
        sender = conn.sender
        rec = next(iter(sender.records.values()), None)
        if rec is None:  # all records retired after completion
            sim2 = Simulator(seed=7, simsan=True)
            conn2 = make_conn(sim2)
            conn2.start_transfer(50 * MSS)
            sim2.step()  # just enough to emit the first packets
            while not conn2.sender.records:
                sim2.step()
            sim, sender = sim2, conn2.sender
            rec = next(iter(sender.records.values()))
        state = sim.san._senders[sender]
        with pytest.raises(InvariantViolation, match="pkt_seq_monotone"):
            # Re-announce an already-seen PKT.SEQ: S5.1 forbids reuse.
            sim.san.on_data_sent(sender, rec)
        assert state.last_pkt_seq >= rec.pkt_seq

    def test_cum_ack_monotone(self):
        sim, conn = self.setup_conn()
        sender = conn.sender
        sender.cum_acked -= MSS  # corrupt: ack point regresses
        from repro.transport.feedback import AckFeedback
        fb = AckFeedback(cum_ack=sender.cum_acked, awnd=1 << 20)
        with pytest.raises(InvariantViolation, match="cum_ack_monotone"):
            sim.san.on_sender_feedback(sender, fb)

    def test_nonneg_rwnd(self):
        sim, conn = self.setup_conn()
        from repro.transport.feedback import AckFeedback
        fb = AckFeedback(cum_ack=conn.sender.cum_acked, awnd=-1)
        with pytest.raises(InvariantViolation, match="nonneg_rwnd"):
            sim.san.on_sender_feedback(conn.sender, fb)

    def test_nonneg_pacing(self):
        sim, conn = self.setup_conn()
        conn.sender.cc._cwnd = 0  # corrupt: zero congestion window
        from repro.transport.feedback import AckFeedback
        fb = AckFeedback(cum_ack=conn.sender.cum_acked, awnd=1 << 20)
        with pytest.raises(InvariantViolation, match="nonneg_pacing"):
            sim.san.on_sender_feedback(conn.sender, fb)

    def test_byte_conservation_counter_drift(self):
        sim, conn = self.setup_conn()
        conn.sender.in_flight += MSS  # corrupt: phantom in-flight bytes
        with pytest.raises(InvariantViolation, match="byte_conservation"):
            sim.san.check_sender_ledger(conn.sender)

    def test_byte_conservation_missing_record(self):
        sim, conn = self.setup_conn()
        sender = conn.sender
        sender.next_seq += MSS  # corrupt: bytes sent with no record
        with pytest.raises(InvariantViolation, match="byte_conservation"):
            sim.san.check_sender_ledger(sender)

    def test_rtt_min_window(self):
        sim, conn = self.setup_conn()
        sender = conn.sender
        state = sim.san._senders[sender]
        assert state.rtt_samples, "transfer should have produced samples"
        # Corrupt: inflate every estimator so the reported windowed min
        # exceeds the smallest raw sample the sanitizer witnessed.
        floor = min(s for _, s in state.rtt_samples)
        bad = floor * 10.0
        from repro.transport.feedback import AckFeedback
        sender.min_rtt_legacy._filter._samples.clear()
        sender.min_rtt_legacy._filter.update(bad, sim.now())
        fb = AckFeedback(cum_ack=sender.cum_acked, awnd=1 << 20)
        with pytest.raises(InvariantViolation, match="rtt_min_window"):
            sim.san.on_sender_feedback(sender, fb)

    def test_rtt_sample_must_be_positive(self):
        sim, conn = self.setup_conn()
        with pytest.raises(InvariantViolation, match="rtt_min_window"):
            sim.san.on_rtt_sample(conn.sender, -0.001, sim.now())

    def test_stream_conservation(self):
        sim, conn = self.setup_conn()
        receiver = conn.receiver
        # Corrupt: receiver claims delivery of bytes never injected.
        receiver.delivered_ptr = conn.sender.next_seq + 10 * MSS
        with pytest.raises(InvariantViolation, match="stream_conservation"):
            sim.san.on_receiver_data(receiver)

    def test_receiver_delivered_ptr_monotone(self):
        sim, conn = self.setup_conn()
        receiver = conn.receiver
        sim.san.on_receiver_data(receiver)  # snapshot current pointer
        receiver.delivered_ptr -= 1
        with pytest.raises(InvariantViolation, match="cum_ack_monotone"):
            sim.san.on_receiver_data(receiver)


class TestCleanRunsStayClean:
    @pytest.mark.parametrize("receiver_driven", [False, True])
    def test_transfer_completes_under_sanitizer(self, receiver_driven):
        sim = Simulator(seed=11, simsan=True)
        conn = make_conn(sim, receiver_driven=receiver_driven,
                         timing_mode="advanced" if receiver_driven else "legacy")
        run_transfer(sim, conn)
        assert sim.san.checks_run > 100

    def test_lossy_path_under_sanitizer(self):
        from repro.netsim.loss import BernoulliLoss
        sim = Simulator(seed=3, simsan=True)
        path = wired_path(sim, 20e6, 0.04,
                          forward_loss=BernoulliLoss(0.02, sim.fork_rng("l")))
        conn = Connection(sim, NewReno(), DelayedAck(),
                          forward_port=path.forward,
                          reverse_port=path.reverse)
        run_transfer(sim, conn, until=20.0)

    def test_sanitizer_off_leaves_no_hooks(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIMSAN", raising=False)
        sim = Simulator(seed=5)
        conn = make_conn(sim)
        assert conn.sender._san is None
        assert conn.receiver._san is None
        run_transfer(sim, conn)
