"""repro.profile: the profiler, engine/endpoint instrumentation,
collapsed-stack export, campaign integration, and the `top` CLI."""

import json
import os

import pytest

from repro.core.flavors import make_connection
from repro.netsim.engine import Simulator
from repro.netsim.paths import wired_path
from repro.profile import (
    PROFILE_SCHEMA,
    Profiler,
    parse_collapsed,
    read_profile,
    top_handlers,
    top_spans,
)
from repro.profile.cli import main


def profiled_connection_second(scheme="tcp-tack", duration_s=0.25,
                               **prof_kwargs):
    prof = Profiler(**prof_kwargs)
    sim = Simulator(seed=1, profiler=prof)
    path = wired_path(sim, 50e6, 0.04)
    conn = make_connection(sim, scheme, initial_rtt_s=0.04)
    conn.wire(path.forward, path.reverse)
    conn.start_bulk()
    sim.run(until=duration_s)
    return prof, conn


class TestProfilerCore:
    def test_wrap_counts_calls(self):
        prof = Profiler()
        calls = []
        fn = prof.wrap("my.span", lambda x: calls.append(x) or x * 2)
        assert fn(21) == 42
        fn(1)
        assert calls == [21, 1]
        agg = prof._spans["my.span"]
        assert agg.count == 2
        assert agg.total_s >= agg.self_s >= 0.0

    def test_nested_spans_attribute_self_time_exclusively(self):
        prof = Profiler()

        def inner():
            return sum(range(2000))

        wrapped_inner = prof.wrap("inner", inner)
        outer = prof.wrap("outer", lambda: wrapped_inner())
        outer()
        outer_agg = prof._spans["outer"]
        inner_agg = prof._spans["inner"]
        # Parent total covers the child; parent self excludes it.
        assert outer_agg.total_s >= inner_agg.total_s
        assert outer_agg.self_s <= outer_agg.total_s - inner_agg.total_s \
            + 1e-6

    def test_wrap_propagates_exceptions_and_pops(self):
        prof = Profiler()

        def boom():
            raise RuntimeError("x")

        wrapped = prof.wrap("bad", boom)
        with pytest.raises(RuntimeError):
            wrapped()
        assert prof._stack == []  # finally popped the frame
        assert prof._spans["bad"].count == 1

    def test_sample_decimation_bounds_memory(self):
        from repro.profile.profiler import _MAX_SAMPLES
        prof = Profiler()
        agg_fn = prof.wrap("hot", lambda: None)
        for _ in range(1000):
            agg_fn()
        agg = prof._spans["hot"]
        assert agg.count == 1000
        assert len(agg.samples) <= _MAX_SAMPLES

    def test_histogram_off_keeps_totals_only(self):
        prof = Profiler(histogram=False)
        fn = prof.wrap("lean", lambda: None)
        fn()
        agg = prof._spans["lean"]
        assert agg.count == 1 and agg.samples == []


class TestEngineInstrumentation:
    def test_event_accounting_matches_engine(self):
        prof, conn = profiled_connection_second()
        assert prof.events_fired > 100
        assert prof.dispatch_s > 0
        assert prof.queue_high_water > 0
        assert 0 < prof.sim_elapsed_s <= 0.25 + 1e-9

    def test_handler_classes_are_owner_method_names(self):
        prof, _ = profiled_connection_second()
        names = set(prof._handlers)
        assert any(n.startswith("TransportSender.") for n in names)

    def test_subsystem_spans_bound(self):
        prof, _ = profiled_connection_second()
        spans = set(prof._spans)
        assert {"sender.try_send", "sender.feedback",
                "receiver.packet", "cc.bbr"} <= spans
        assert any(s.startswith("ack.tack.") for s in spans)

    def test_step_loop_also_profiles(self):
        prof = Profiler()
        sim = Simulator(seed=1, profiler=prof)
        sim.call_in(0.01, lambda: None)
        sim.call_in(0.02, lambda: None)
        while sim.step():
            pass
        assert prof.events_fired == 2

    def test_attach_profiler_is_explicit_alternative(self):
        sim = Simulator(seed=1)
        prof = sim.attach_profiler(Profiler())
        assert sim.profiler is prof
        sim.call_in(0.01, lambda: None)
        sim.run()
        assert prof.events_fired == 1

    def test_profiling_does_not_perturb_simulation(self):
        prof, conn = profiled_connection_second()
        sim2 = Simulator(seed=1)
        path2 = wired_path(sim2, 50e6, 0.04)
        conn2 = make_connection(sim2, "tcp-tack", initial_rtt_s=0.04)
        conn2.wire(path2.forward, path2.reverse)
        conn2.start_bulk()
        sim2.run(until=0.25)
        assert (conn.receiver.stats.bytes_delivered
                == conn2.receiver.stats.bytes_delivered)

    def test_disabled_mode_leaves_methods_unbound(self):
        sim = Simulator(seed=1)
        assert sim.profiler is None
        conn = make_connection(sim, "tcp-tack")
        bound = conn.receiver.on_packet
        assert getattr(bound, "__func__", None) is type(
            conn.receiver).on_packet


class TestReportAndExport:
    def test_report_schema(self):
        prof, _ = profiled_connection_second()
        report = prof.report()
        assert report["schema"] == PROFILE_SCHEMA
        assert report["events"]["fired"] == prof.events_fired
        assert report["events"]["per_s"] > 0
        handler = next(iter(report["handlers"].values()))
        assert {"count", "total_s", "self_s", "max_us", "mean_us",
                "p50_us", "p90_us", "p99_us"} <= set(handler)
        assert handler["p50_us"] is not None  # histogram was on

    def test_write_and_read_json(self, tmp_path):
        prof, _ = profiled_connection_second(duration_s=0.05)
        out = str(tmp_path / "run.profile.json")
        prof.write_json(out)
        doc = read_profile(out)
        assert doc["events"]["fired"] == prof.events_fired

    def test_read_rejects_foreign_json(self, tmp_path):
        p = tmp_path / "x.json"
        p.write_text('{"schema": "other"}')
        with pytest.raises(ValueError):
            read_profile(str(p))

    def test_collapsed_stack_format(self, tmp_path):
        prof, _ = profiled_connection_second()
        out = str(tmp_path / "run.folded")
        n = prof.write_collapsed(out)
        assert n > 0
        with open(out) as fh:
            lines = fh.readlines()
        stacks = parse_collapsed(lines)  # raises on any malformed line
        assert len(stacks) == n
        # Nested span stacks appear with their parent frames intact.
        assert any(len(frames) >= 2 for frames, _ in stacks)
        assert all(value > 0 for _, value in stacks)
        for frames, _ in stacks:
            for frame in frames:
                assert " " not in frame and ";" not in frame

    def test_parse_collapsed_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_collapsed(["no-value-here"])
        with pytest.raises(ValueError):
            parse_collapsed(["a;b 0"])          # non-positive value
        with pytest.raises(ValueError):
            parse_collapsed(["a;;b 10"])        # empty frame
        with pytest.raises(ValueError):
            parse_collapsed(["a;b notanint"])

    def test_top_queries(self):
        prof, _ = profiled_connection_second()
        report = prof.report()
        handlers = top_handlers(report, n=3)
        assert len(handlers) <= 3
        self_times = [doc["self_s"] for _, doc in handlers]
        assert self_times == sorted(self_times, reverse=True)
        assert top_spans(report, n=2)

    def test_memory_snapshot(self):
        prof, _ = profiled_connection_second(duration_s=0.05, memory=True)
        report = prof.report()
        prof.close()
        assert report["memory"] is not None
        assert report["memory"]["peak_bytes"] > 0
        assert report["memory"]["top"]


class TestCampaignIntegration:
    def test_profile_path_forwarded_and_digested(self, tmp_path):
        from repro.bench.record import file_sha256
        from repro.runner import Campaign

        out = str(tmp_path / "task.profile.json")
        campaign = Campaign("profiled", base_seed=7)
        campaign.add("profiled-run", _profiled_task, profile_path=out,
                     duration_s=0.05)
        result = campaign.run().result("profiled-run")
        assert result.ok
        assert result.profile["path"] == out
        assert result.profile["sha256"] == file_sha256(out)
        manifest_task = [t for t in campaign.run().manifest["tasks"]
                         if t["name"] == "profiled-run"][0]
        assert manifest_task["profile"]["path"] == out

    def test_profiled_task_bypasses_cache(self, tmp_path):
        from repro.runner import Campaign

        out = str(tmp_path / "p.json")
        for _ in range(2):
            campaign = Campaign("profiled", base_seed=7)
            campaign.add("run", _profiled_task, profile_path=out,
                         duration_s=0.05)
            result = campaign.run(
                cache_dir=str(tmp_path / "cache")).result("run")
            assert result.cache == "off"  # never hit, never stored
            assert result.ok

    def test_unprofiled_tasks_unaffected(self, tmp_path):
        from repro.runner import Campaign
        campaign = Campaign("plain", base_seed=7)
        campaign.add("plain", _plain_task)
        result = campaign.run().result("plain")
        assert result.ok and result.profile is None


def _profiled_task(seed=0, duration_s=0.05, profile_path=None):
    prof = Profiler(label="task")
    sim = Simulator(seed=seed or 1, profiler=prof)
    path = wired_path(sim, 20e6, 0.02)
    conn = make_connection(sim, "tcp-tack", initial_rtt_s=0.02)
    conn.wire(path.forward, path.reverse)
    conn.start_bulk()
    sim.run(until=duration_s)
    if profile_path is not None:
        prof.write_json(profile_path)
    return conn.receiver.stats.bytes_delivered


def _plain_task(seed=0):
    return seed


class TestTopCli:
    def test_top_prints_table_and_writes_artifacts(self, tmp_path, capsys):
        folded = str(tmp_path / "o.folded")
        report = str(tmp_path / "o.json")
        assert main(["top", "--duration-s", "0.1", "-n", "4",
                     "--flamegraph", folded, "--json", report]) == 0
        out = capsys.readouterr().out
        assert "events:" in out and "handler" in out
        with open(folded) as fh:
            assert parse_collapsed(fh.readlines())
        assert json.load(open(report))["schema"] == PROFILE_SCHEMA

    def test_top_scheme_option(self, capsys):
        assert main(["top", "--duration-s", "0.05",
                     "--scheme", "tcp-bbr"]) == 0
        assert "tcp-bbr" in capsys.readouterr().out


class TestQuickstartProfilingSmoke:
    def test_quickstart_runs_under_profiler(self):
        """The profiler composes with a real example untouched: inject
        via a Simulator factory, run the reduced quickstart workload,
        and the profile must show the WLAN machinery doing the work."""
        from test_examples_smoke import load_example

        mod = load_example("quickstart.py")
        mod.DURATION_S = 0.5
        mod.WARMUP_S = 0.1
        prof = Profiler(label="quickstart")
        real = mod.Simulator
        mod.Simulator = lambda **kw: real(profiler=prof, **kw)
        try:
            result = mod.run_scheme("tcp-tack")
        finally:
            mod.Simulator = real
        assert result["goodput_mbps"] > 1
        assert prof.events_fired > 100
        assert prof._spans  # transport spans got bound through BulkFlow
        report = prof.report()
        assert report["events"]["sim_s"] == pytest.approx(0.5, rel=0.1)
