"""Property test: the sender's scoreboard against a reference model.

Random feedback sequences (cumulative ACKs, SACK blocks, pulls) are
applied to a sender whose transmissions are captured but never
delivered; a brute-force per-segment reference model tracks what the
sender *should* believe.  Invariants: in-flight accounting never goes
negative or exceeds what was sent, acked bytes are never retransmitted,
and completion fires exactly when everything is covered.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc import NewReno
from repro.netsim.engine import Simulator
from repro.netsim.packet import MSS, Packet, PacketType
from repro.transport.feedback import AckFeedback, make_feedback_packet
from repro.transport.sender import TransportSender


class CapturePort:
    def __init__(self):
        self.sent = []

    def send(self, packet):
        self.sent.append(packet)
        return True

    def connect(self, sink):
        pass


def make_sender(total_segments):
    sim = Simulator(seed=1)
    sender = TransportSender(sim, NewReno(), receiver_driven=True)
    port = CapturePort()
    sender.connect(port)
    sender.start()
    syn_ack = Packet(PacketType.SYN_ACK, size=64)
    syn_ack.meta["syn_sent_at"] = 0.0
    sim.call_in(0.01, lambda: sender.on_packet(syn_ack))
    sender.set_total(total_segments * MSS)
    sim.run(until=2.0)
    return sim, sender, port


feedback_steps = st.lists(
    st.tuples(
        st.integers(0, 20),            # cum ack in segments
        st.lists(                      # sack blocks in segment space
            st.tuples(st.integers(0, 19), st.integers(1, 3)),
            max_size=3,
        ),
    ),
    min_size=1,
    max_size=15,
)


@given(feedback_steps)
@settings(max_examples=80, deadline=None)
def test_scoreboard_invariants(steps):
    total = 20
    sim, sender, port = make_sender(total)
    sent_segments = {p.seq // MSS for p in port.sent if p.kind is PacketType.DATA}

    # Reference model: the highest cumulative ack seen so far.  An
    # ack beyond what had been transmitted when the feedback arrived
    # is an optimistic ACK: the feedback guard rejects the field, so
    # the model expects *no* progress from it (not a clamp to sent).
    best_cum = 0
    for cum_seg, sack in steps:
        cum = cum_seg * MSS
        sack_blocks = [
            (s * MSS, min(s + length, total) * MSS) for s, length in sack
        ]
        sent_at_feedback = sender.next_seq
        fb = AckFeedback(cum_ack=cum, awnd=1 << 30, sack_blocks=sack_blocks)
        sender.on_packet(make_feedback_packet(PacketType.TACK, fb))
        sim.run(until=sim.now() + 0.05)
        if cum <= sent_at_feedback:
            best_cum = max(best_cum, cum)

        # Invariant 1: cum_acked is the max seen, never beyond sent.
        assert sender.cum_acked == best_cum
        assert sender.cum_acked <= sender.next_seq
        # Invariant 2: in-flight within [0, bytes outstanding].
        assert 0 <= sender.in_flight <= sender.next_seq - 0
        # Invariant 3: no record below cum_acked survives.
        assert all(rec.end > sender.cum_acked
                   for rec in sender.records.values())
        # Invariant 4: completion exactly when everything acked.
        if sender.cum_acked >= total * MSS:
            assert sender.completed_at is not None
        else:
            assert sender.completed_at is None


@given(st.lists(st.tuples(st.integers(1, 20), st.integers(1, 20)),
                min_size=1, max_size=10))
@settings(max_examples=80, deadline=None)
def test_pull_never_retransmits_acked_data(pull_ranges):
    total = 20
    sim, sender, port = make_sender(total)
    # Ack the first half cumulatively.
    fb = AckFeedback(cum_ack=10 * MSS, awnd=1 << 30)
    sender.on_packet(make_feedback_packet(PacketType.TACK, fb))
    sim.run(until=sim.now() + 0.05)
    port.sent.clear()
    for lo, hi in pull_ranges:
        a, b = min(lo, hi), max(lo, hi)
        fb = AckFeedback(cum_ack=10 * MSS, awnd=1 << 30,
                         pull_pkt_range=(a - 1, b + 1))
        sender.on_packet(make_feedback_packet(PacketType.IACK, fb))
        sim.run(until=sim.now() + 0.05)
    # Retransmissions may occur, but never of cumulatively acked bytes.
    for pkt in port.sent:
        if pkt.kind is PacketType.DATA:
            assert pkt.seq >= 10 * MSS


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_random_block_feedback_conserves_bytes(data):
    """However feedback arrives, delivered + in-flight + lost-marked
    never exceeds what was transmitted."""
    total = 16
    sim, sender, port = make_sender(total)
    for _ in range(data.draw(st.integers(1, 10))):
        cum = data.draw(st.integers(0, total)) * MSS
        blocks = [
            (s * MSS, (s + 1) * MSS)
            for s in data.draw(st.sets(st.integers(0, total - 1), max_size=5))
        ]
        fb = AckFeedback(cum_ack=cum, awnd=1 << 30,
                         sack_blocks=sorted(blocks),
                         unacked_blocks=[])
        sender.on_packet(make_feedback_packet(PacketType.TACK, fb))
        sim.run(until=sim.now() + 0.02)
        assert sender.delivered <= sender.stats.bytes_sent
        assert sender.in_flight >= 0
