"""REP103 golden fixture: return-value unit mismatches.

A unit-suffixed function name declares its return unit; returning a
value of a conflicting inferred unit is the bug.
"""


def backoff_s(queue_bytes):
    return queue_bytes  # expect: REP103


def window_bytes(rtt_s):
    return rtt_s * 2.0  # expect: REP103


def poll_hz(interval_s):
    return interval_s  # expect: REP103


def budget_pkts(rate_bps):
    return rate_bps  # expect: REP103


def drain_rate_bps(backlog_pkts):
    return backlog_pkts  # expect: REP103


def fine_declared_return(size_bytes, rate_bps):
    def serialization_s():
        return size_bytes * 8.0 / rate_bps

    return serialization_s()


def fine_unsuffixed_mixed_returns(flag, rtt_s):
    # No declared unit: a unitless early-out does not conflict.
    if flag:
        return 0.0
    return rtt_s
