"""REP101 golden fixture: mixed-unit arithmetic and comparisons.

Lines tagged ``# expect: CODE`` must produce exactly that finding;
untagged lines must stay silent.
"""


def add_time_to_bytes(rtt_s, size_bytes):
    return rtt_s + size_bytes  # expect: REP101


def subtract_rate_from_time(timeout_s, rate_bps):
    return timeout_s - rate_bps  # expect: REP101


def compare_time_to_bytes(deadline_s, queue_bytes):
    return deadline_s < queue_bytes  # expect: REP101


def min_of_time_and_rate(interval_s, rate_bps):
    return min(interval_s, rate_bps)  # expect: REP101


def max_of_bytes_and_pkts(queue_bytes, backlog_pkts):
    return max(queue_bytes, backlog_pkts)  # expect: REP101


def seconds_vs_hertz(interval_s, freq_hz):
    return interval_s + freq_hz  # expect: REP101


def fine_same_dimension(rtt_s, owd_ms):
    # ms and s share the time dimension (scale, not dimension).
    return rtt_s + owd_ms


def fine_literal_wildcard(rtt_s):
    return rtt_s + 0.01


def fine_quotient(size_bytes, rate_bps):
    # bytes / bps -> s; comparing to seconds is consistent.
    delay_s = size_bytes * 8.0 / rate_bps
    return delay_s < 1.0
