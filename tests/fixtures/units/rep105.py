"""REP105 golden fixture: unsuffixed parameters meeting units in
unit-sensitive arithmetic (strict scope only)."""


def elapsed_since(start, now_s):
    return now_s - start  # expect: REP105


def remaining_window(budget, used_bytes):
    return budget - used_bytes  # expect: REP105


def overdue(deadline, rtt_s):
    return deadline < rtt_s  # expect: REP105


def clamp_gap(gap, interval_s):
    return min(gap, interval_s)  # expect: REP105


def advance(timeout, backoff_s):
    return timeout + backoff_s  # expect: REP105


def fine_dimensionless_name(beta, rtt_s):
    # `beta` is catalogued dimensionless: scaling a unit is fine.
    return rtt_s * beta


def fine_division(count, window_bytes):
    # Dividing by a bare count is idiomatic; only +/-/compare fire.
    return window_bytes / count
