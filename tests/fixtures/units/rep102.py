"""REP102 golden fixture: call-argument unit mismatches."""


def set_timeout(timeout_s):
    return timeout_s


def enqueue(size_bytes):
    return size_bytes


class Shaper:
    def __init__(self, rate_bps):
        self.rate_bps = rate_bps

    def pace(self, gap_s):
        return gap_s


def positional_mismatch(queue_bytes):
    return set_timeout(queue_bytes)  # expect: REP102


def keyword_mismatch(rtt_s):
    return enqueue(size_bytes=rtt_s)  # expect: REP102


def constructor_mismatch(interval_s):
    return Shaper(interval_s)  # expect: REP102


def method_mismatch(shaper_rate_bps, size_bytes):
    shaper = Shaper(shaper_rate_bps)
    return shaper.pace(size_bytes)  # expect: REP102


def derived_unit_mismatch(rate_bps):
    # bps where bytes is declared: dimensions data/time vs data.
    return enqueue(rate_bps)  # expect: REP102


def fine_matching_units(rtt_s, mtu_bytes):
    set_timeout(rtt_s)
    enqueue(mtu_bytes)
    return Shaper(1e6).pace(rtt_s)


def fine_literal_argument():
    return set_timeout(0.25)
