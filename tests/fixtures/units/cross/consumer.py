"""Inter-procedural fixture, caller side: units learned from
``producer`` flow through the import and get checked at the call."""

from cross.producer import sampled_rtt, sampled_window


def record_bytes(size_bytes):
    return size_bytes


def record_delay(delay_s):
    return delay_s


def misroute_time_into_bytes():
    return record_bytes(sampled_rtt())  # expect: REP102


def misroute_bytes_into_time():
    return record_delay(sampled_window())  # expect: REP102


def fine_routed():
    record_delay(sampled_rtt())
    return record_bytes(sampled_window())
