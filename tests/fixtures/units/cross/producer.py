"""Inter-procedural fixture, callee side: the return unit of
``sampled_rtt`` is *inferred* (no annotation, no suffix on the
function name) from its body."""


def sampled_rtt():
    rtt_s = 0.042
    return rtt_s


def sampled_window():
    window_bytes = 65536
    return window_bytes
