"""REP104 golden fixture: unit-suffixed names bound to conflicting
values."""


def bad_timeout(queue_bytes):
    timeout_s = queue_bytes  # expect: REP104
    return timeout_s


def bad_window(rate_bps):
    window_bytes = rate_bps  # expect: REP104
    return window_bytes


def bad_pacing(rtt_s):
    pacing_bps = rtt_s  # expect: REP104
    return pacing_bps


def bad_tick(mtu_bytes):
    tick_hz = mtu_bytes  # expect: REP104
    return tick_hz


class Tracker:
    def __init__(self, rtt_s, size_bytes):
        self.srtt_s = size_bytes  # expect: REP104
        self.mtu_bytes = size_bytes


def fine_quotient_assignment(size_bytes, rate_bps):
    delay_s = size_bytes * 8.0 / rate_bps
    return delay_s


def fine_inverse_assignment(interval_s):
    freq_hz = 1.0 / interval_s
    return freq_hz
