"""Property-based tests for filters, percentile, and the ACK-frequency
model (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.ack_frequency import (
    byte_counting_frequency,
    delayed_ack_frequency,
    per_packet_frequency,
    tack_frequency,
)
from repro.cc.windowed_filter import WindowedMaxFilter, WindowedMinFilter
from repro.stats.percentile import percentile

sample_stream = st.lists(
    st.tuples(st.floats(0.0, 100.0), st.floats(-1e6, 1e6)),
    min_size=1,
    max_size=200,
).map(lambda xs: sorted(xs, key=lambda p: p[0]))


@given(sample_stream, st.floats(0.1, 10.0))
@settings(max_examples=100)
def test_windowed_max_matches_brute_force(stream, window):
    f = WindowedMaxFilter(window)
    for i, (t, v) in enumerate(stream):
        f.update(v, t)
        seen = stream[: i + 1]  # only samples inserted so far
        brute = max(val for ts, val in seen if ts >= t - window)
        assert f.get() == brute


@given(sample_stream, st.floats(0.1, 10.0))
@settings(max_examples=100)
def test_windowed_min_matches_brute_force(stream, window):
    f = WindowedMinFilter(window)
    for i, (t, v) in enumerate(stream):
        f.update(v, t)
        seen = stream[: i + 1]
        brute = min(val for ts, val in seen if ts >= t - window)
        assert f.get() == brute


@given(st.lists(st.floats(-1e9, 1e9, allow_nan=False), min_size=1, max_size=300),
       st.floats(0, 100))
def test_percentile_bounded_by_extremes(values, pct):
    p = percentile(values, pct)
    assert min(values) <= p <= max(values)


@given(st.lists(st.floats(-1e9, 1e9, allow_nan=False), min_size=1, max_size=300))
def test_percentile_endpoints(values):
    assert percentile(values, 0) == min(values)
    assert percentile(values, 100) == max(values)


@given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=100),
       st.floats(0, 100), st.floats(0, 100))
def test_percentile_monotone_in_pct(values, p1, p2):
    lo, hi = min(p1, p2), max(p1, p2)
    assert percentile(values, lo) <= percentile(values, hi)


# --- ACK frequency model properties (paper S4.2 insights) -----------

bw = st.floats(1e3, 1e10)
rtt = st.floats(1e-4, 10.0)


@given(bw, rtt)
def test_tack_never_exceeds_tcp_frequency(bw_bps, rtt_s):
    """Paper insight 1: f_tack <= f_tcp for the same L."""
    assert tack_frequency(bw_bps, rtt_s, count_l=2) <= (
        byte_counting_frequency(bw_bps, 2) + 1e-9
    )


@given(bw, rtt)
def test_tack_bounded_by_periodic_clock(bw_bps, rtt_s):
    assert tack_frequency(bw_bps, rtt_s) <= 4.0 / rtt_s + 1e-9


@given(bw, bw, rtt)
def test_tack_monotone_in_bandwidth(bw1, bw2, rtt_s):
    lo, hi = min(bw1, bw2), max(bw1, bw2)
    assert tack_frequency(lo, rtt_s) <= tack_frequency(hi, rtt_s) + 1e-9


@given(bw, rtt, rtt)
def test_tack_antitone_in_rtt(bw_bps, r1, r2):
    """Larger RTT_min -> no more ACKs (paper insight 3)."""
    lo, hi = min(r1, r2), max(r1, r2)
    assert tack_frequency(bw_bps, hi) <= tack_frequency(bw_bps, lo) + 1e-9


@given(bw)
def test_per_packet_dominates_delayed(bw_bps):
    assert delayed_ack_frequency(bw_bps) <= per_packet_frequency(bw_bps) + 1e-9


@given(bw, st.integers(1, 64))
def test_byte_counting_scales_inverse_l(bw_bps, L):
    f1 = byte_counting_frequency(bw_bps, 1)
    fl = byte_counting_frequency(bw_bps, L)
    assert math.isclose(fl * L, f1, rel_tol=1e-9)
