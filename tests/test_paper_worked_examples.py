"""The paper's in-text worked examples, transcribed as tests.

Each test reproduces a concrete numeric example the paper walks
through, so the implementation can be checked against the authors'
own arithmetic.
"""

import pytest

from repro.analysis.ack_frequency import tack_frequency
from repro.analysis.buffer_req import l_upper_bound
from repro.core.loss_detect import PktSeqTracker
from repro.core.owd_timing import SenderRttMinEstimator
from repro.netsim.packet import MSS
from repro.transport.intervals import IntervalSet


class TestS51RetransmissionAmbiguity:
    """S5.1: five packets [0..5999], MSS 1500; packet 2 dropped, its
    retransmission (PKT.SEQ 4) dropped again — the receiver still
    detects the retransmission loss from the number gap."""

    def test_example_step_by_step(self):
        tracker = PktSeqTracker()
        assert tracker.on_packet(1) is None          # [0..1499]
        # PKT.SEQ 2 ([1500..2999]) dropped; 3 arrives:
        event = tracker.on_packet(3)                 # [3000..4499]
        assert event is not None
        assert event.missing_range() == (2, 2)
        # Sender retransmits [1500..2999] as PKT.SEQ 4; it drops too.
        # PKT.SEQ 5 arrives ([4500..5999]):
        event2 = tracker.on_packet(5)
        assert event2 is not None
        assert event2.missing_range() == (4, 4)      # the retx loss

    def test_bytestream_state_matches(self):
        received = IntervalSet()
        for seq in (0, 3000, 4500):                  # 1500-byte packets
            received.add(seq, seq + 1500)
        assert received.first_missing(0) == 1500     # hole at [1500..2999]
        assert received.gaps(6000) == [(1500, 3000)]


class TestS51AckedUnackedLists:
    """S5.1: packets 1..10 sent; 1, 4, 5, 6, 10 received.  Acked list:
    {1}, {4,6}, {10}; unacked list: {2,3}, {7,9}."""

    def test_block_lists(self):
        received = IntervalSet()
        for pkt in (1, 4, 5, 6, 10):
            received.add(pkt, pkt + 1)  # packet-number space
        assert received.ranges() == [(1, 2), (4, 7), (10, 11)]
        assert received.gaps(11)[1:] == [(2, 4), (7, 10)]


class TestS43FeedbackDelayExample:
    """S4.3: RTT_min 200 ms, bw 10 Mbps, L = 1 -> f_tack = 20 Hz, so a
    loss just after a TACK waits up to 50 ms for the next one."""

    def test_frequency_is_20hz(self):
        f = tack_frequency(10e6, 0.2, beta=4.0, count_l=1)
        assert f == pytest.approx(20.0)
        assert 1.0 / f == pytest.approx(0.05)  # up to 50 ms delay


class TestFig4RttCorrection:
    """Fig. 4(b): RTT = t1 - t0 - delta_t."""

    def test_sample_formula(self):
        est = SenderRttMinEstimator()
        t0, t1, delta = 10.0, 10.35, 0.15
        sample = est.on_tack(t1, t0, delta)
        assert sample == pytest.approx(t1 - t0 - delta)


class TestAppendixB2LBound:
    """B.2: Q = 4, rho = rho' = 10% -> an ACK at least every L = 400
    full-sized packets."""

    def test_bound(self):
        assert l_upper_bound(4, 0.1, 0.1) == pytest.approx(400.0)


class TestS44IackFrequencyBound:
    """S4.4: with loss rate rho, the loss-event IACK frequency is at
    most rho * bw / MSS — 'only adds few ACKs on the return path'."""

    def test_iack_rate_bounded_in_simulation(self):
        import sys
        sys.path.insert(0, "tests")
        from conftest import build_wired_connection
        from repro.netsim.engine import Simulator

        rho, bw = 0.01, 20e6
        sim = Simulator(seed=3)
        conn, _ = build_wired_connection(sim, "tcp-tack", rate_bps=bw,
                                         rtt_s=0.05, data_loss=rho,
                                         queue_bytes=500_000)
        conn.start_bulk()
        sim.run(until=10.0)
        iack_rate = conn.receiver.stats.iacks_sent / 10.0
        bound = rho * bw / (MSS * 8)
        # The bound holds with slack for window-event IACKs.
        assert iack_rate < 1.5 * bound + 5


class TestFig8bNumbers:
    """Fig. 8(b)'s table entries are Eq. (3) evaluations."""

    @pytest.mark.parametrize(
        "bw,rtt,expected",
        [
            (590e6, 0.010, 400.0),   # 802.11ac @ 10 ms
            (590e6, 0.080, 50.0),    # 802.11ac @ 80 ms
            (590e6, 0.200, 20.0),    # 802.11ac @ 200 ms
            (7e6, 0.010, 291.7),     # 802.11b @ 10 ms ~ TCP(L=2)'s 294
        ],
    )
    def test_fig8b_cell(self, bw, rtt, expected):
        assert tack_frequency(bw, rtt) == pytest.approx(expected, rel=0.01)


class TestS63AckRatioClaim:
    """S6.3: over 802.11g, TACK's ACKs/data ~ 1.9% vs TCP's ~50%."""

    def test_ratio_in_simulation(self):
        from repro.app.bulk import BulkFlow
        from repro.netsim.engine import Simulator
        from repro.netsim.paths import wlan_path

        ratios = {}
        for scheme in ("tcp-tack", "tcp-bbr"):
            sim = Simulator(seed=5)
            path = wlan_path(sim, "802.11g", extra_rtt_s=0.08)
            flow = BulkFlow(sim, path, scheme, initial_rtt_s=0.08)
            flow.start()
            sim.run(until=5.0)
            ratios[scheme] = flow.ack_ratio()
        assert ratios["tcp-tack"] < 0.08          # paper: ~1.9%
        assert 0.3 < ratios["tcp-bbr"] < 0.8      # paper: ~50%
