"""Unit tests for the pacer, RACK state, and RTT estimators."""

import pytest

from repro.cc.pacing import Pacer
from repro.cc.rack import RackState
from repro.transport.rtt import MinRttTracker, RttEstimator


class TestPacer:
    def test_first_send_allowed_immediately(self):
        p = Pacer(rate_bps=8e6)
        assert p.can_send(0.0)

    def test_spacing_matches_rate(self):
        p = Pacer(rate_bps=8e6)  # 1000 bytes -> 1 ms
        p.on_sent(1000, 0.0)
        assert p.next_send_time(0.0) == pytest.approx(0.001)
        assert not p.can_send(0.0005)
        assert p.can_send(0.001)

    def test_no_burst_after_idle(self):
        p = Pacer(rate_bps=8e6)
        p.on_sent(1000, 0.0)
        # Long idle: the next send is charged from "now", not from the
        # stale credit point.
        p.on_sent(1000, 10.0)
        assert p.next_send_time(10.0) == pytest.approx(10.001)

    def test_rate_change(self):
        p = Pacer(rate_bps=8e6)
        p.set_rate(16e6)
        p.on_sent(1000, 0.0)
        assert p.next_send_time(0.0) == pytest.approx(0.0005)

    def test_rate_never_exceeded(self):
        p = Pacer(rate_bps=8e6)
        sent_bytes = 0
        now = 0.0
        while now < 1.0:
            if p.can_send(now):
                p.on_sent(1000, now)
                sent_bytes += 1000
            now = max(p.next_send_time(now), now + 1e-6)
        assert sent_bytes * 8 <= 8e6 * 1.01

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Pacer(rate_bps=0)
        p = Pacer(rate_bps=1e6)
        p.set_rate(-5.0)  # ignored, keeps previous
        assert p.rate_bps == 1e6


class TestRack:
    def test_no_loss_before_any_delivery(self):
        r = RackState()
        assert not r.is_lost(send_time=0.0, srtt=0.1, now=10.0)

    def test_packet_sent_after_latest_delivery_not_lost(self):
        r = RackState()
        r.on_delivered(send_time=1.0)
        assert not r.is_lost(send_time=2.0, srtt=0.1, now=10.0)

    def test_lost_after_reordering_window(self):
        r = RackState()
        r.on_delivered(send_time=1.0)
        srtt = 0.1
        deadline = 0.5 + srtt + r.reo_wnd(srtt)
        assert not r.is_lost(send_time=0.5, srtt=srtt, now=deadline - 1e-6)
        assert r.is_lost(send_time=0.5, srtt=srtt, now=deadline)

    def test_latest_delivery_monotone(self):
        r = RackState()
        r.on_delivered(3.0)
        r.on_delivered(1.0)  # stale, ignored
        assert r.latest_delivered_send_time == pytest.approx(3.0)


class TestRttEstimator:
    def test_first_sample_initializes(self):
        e = RttEstimator()
        e.on_sample(0.1)
        assert e.srtt == pytest.approx(0.1)
        assert e.rttvar == pytest.approx(0.05)

    def test_smoothing(self):
        e = RttEstimator()
        e.on_sample(0.1)
        e.on_sample(0.2)
        assert e.srtt == pytest.approx(0.875 * 0.1 + 0.125 * 0.2)

    def test_rto_floor(self):
        e = RttEstimator(min_rto_s=0.2)
        e.on_sample(0.001)
        assert e.rto() >= 0.2

    def test_backoff_doubles(self):
        e = RttEstimator()
        e.on_sample(0.1)
        base = e.rto()
        e.back_off()
        assert e.rto() == pytest.approx(2 * base)

    def test_sample_resets_backoff(self):
        e = RttEstimator()
        e.on_sample(0.1)
        e.back_off()
        e.on_sample(0.1)
        assert e.rto() < 0.5

    def test_nonpositive_sample_ignored(self):
        e = RttEstimator()
        e.on_sample(-1.0)
        assert e.srtt is None

    def test_smoothed_default(self):
        assert RttEstimator().smoothed(default=0.3) == 0.3


class TestMinRttTracker:
    def test_tracks_minimum(self):
        t = MinRttTracker(tau_s=10.0)
        t.on_sample(0.2, 0.0)
        t.on_sample(0.1, 1.0)
        t.on_sample(0.3, 2.0)
        assert t.get() == pytest.approx(0.1)

    def test_window_expiry(self):
        t = MinRttTracker(tau_s=5.0)
        t.on_sample(0.1, 0.0)
        t.on_sample(0.2, 4.9)
        t.on_sample(0.2, 6.0)
        assert t.get() == pytest.approx(0.2)

    def test_default_until_first_sample(self):
        t = MinRttTracker()
        assert not t.has_sample
        assert t.get(default=0.123) == 0.123
