"""Streaming digests: quantile accuracy, exact merge semantics.

The fleet aggregation path (`repro.fleet`) depends on two properties
checked here: (1) LogHistogram quantiles track the exact
:func:`repro.stats.percentile` within the bin-width tolerance on
realistic sample shapes, and (2) every digest merges associatively and
order-independently — byte-identical serialized state no matter how
samples were sharded — which is what makes resumed campaigns reproduce
the exact aggregate digest.
"""

import json
import math
import random

import pytest

from repro.stats import BottomKReservoir, ExactSum, LogHistogram, percentile


def canon(obj):
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def sample_sets():
    """Named (name, samples) pairs covering distinct distribution shapes."""
    rng = random.Random("streaming-digest-tests")
    uniform = [rng.uniform(0.01, 10.0) for _ in range(4000)]
    lognormal = [rng.lognormvariate(math.log(0.05), 1.2) for _ in range(4000)]
    # Uneven mode weights keep the tested quantiles inside a mode
    # (a quantile landing in the inter-mode gap is ill-conditioned for
    # any estimator: neighboring ranks differ by orders of magnitude).
    bimodal = ([rng.lognormvariate(math.log(0.004), 0.3) for _ in range(1700)]
               + [rng.lognormvariate(math.log(2.0), 0.4) for _ in range(2300)])
    return [("uniform", uniform), ("lognormal", lognormal),
            ("bimodal", bimodal)]


# ----------------------------------------------------------------------
# ExactSum
# ----------------------------------------------------------------------

class TestExactSum:
    def test_matches_fsum_exactly(self):
        rng = random.Random("exact-sum")
        xs = [rng.uniform(-1e9, 1e9) * 10.0 ** rng.randint(-12, 12)
              for _ in range(2000)]
        acc = ExactSum()
        for x in xs:
            acc.add(x)
        assert acc.value() == math.fsum(xs)

    def test_merge_value_exact_in_any_order(self):
        # The partials *representation* depends on fold order, but the
        # represented value is exact, so value() is identical no matter
        # how the inputs were sharded or in what order shards merged.
        rng = random.Random("exact-sum-merge")
        xs = [rng.uniform(-1.0, 1.0) * 10.0 ** rng.randint(-9, 9)
              for _ in range(3000)]
        chunks = [xs[i::7] for i in range(7)]

        def value(order):
            acc = ExactSum()
            for i in order:
                part = ExactSum()
                for x in chunks[i]:
                    part.add(x)
                acc.merge(part)
            return acc.value()

        expected = math.fsum(xs)
        assert value(range(7)) == expected
        assert value(reversed(range(7))) == expected
        assert value([3, 0, 6, 1, 5, 2, 4]) == expected

    def test_fixed_fold_order_is_byte_stable(self):
        # The fleet resume digest relies on this weaker property: the
        # same shards folded in the same (shard_id) order serialize
        # byte-identically on every run.
        rng = random.Random("exact-sum-stable")
        xs = [rng.uniform(-1e6, 1e6) for _ in range(500)]
        chunks = [xs[i::3] for i in range(3)]

        def digest():
            acc = ExactSum()
            for chunk in chunks:
                part = ExactSum()
                for x in chunk:
                    part.add(x)
                acc.merge(part)
            return canon(acc.to_dict())

        assert digest() == digest()

    def test_round_trip(self):
        acc = ExactSum()
        for x in (1e16, 1.0, -1e16, 1e-8):
            acc.add(x)
        again = ExactSum.from_dict(json.loads(canon(acc.to_dict())))
        assert again.value() == acc.value()
        assert canon(again.to_dict()) == canon(acc.to_dict())


# ----------------------------------------------------------------------
# LogHistogram
# ----------------------------------------------------------------------

class TestLogHistogram:
    @pytest.mark.parametrize("name,samples", sample_sets())
    @pytest.mark.parametrize("pct", [1.0, 10.0, 50.0, 90.0, 99.0])
    def test_quantile_tracks_exact_percentile(self, name, samples, pct):
        hist = LogHistogram(1e-4, 1e4, bins_per_decade=64)
        for s in samples:
            hist.add(s)
        exact = percentile(samples, pct)
        approx = hist.quantile(pct)
        # 64 bins/decade => ~3.7% relative bin width; allow a bit of
        # slack for the rank convention difference at the tails.
        assert approx == pytest.approx(exact, rel=0.06), (name, pct)

    def test_quantiles_clamped_to_observed_range(self):
        hist = LogHistogram(1e-3, 1e3)
        for v in (0.5, 1.0, 2.0):
            hist.add(v)
        assert hist.quantile(0.0) == 0.5
        assert hist.quantile(100.0) == 2.0

    def test_underflow_overflow_bins(self):
        hist = LogHistogram(1.0, 10.0)
        hist.add(0.0)     # below lo_bound -> underflow
        hist.add(100.0)   # at/above hi_bound -> overflow
        assert hist.count == 2
        assert hist.quantile(0.0) == 0.0
        assert hist.quantile(100.0) == 100.0

    def test_merge_associative_and_shard_invariant(self):
        _, samples = sample_sets()[1]
        shards = [samples[i::5] for i in range(5)]

        def build(part):
            h = LogHistogram(1e-4, 1e4, bins_per_decade=64)
            for s in part:
                h.add(s)
            return h

        def stats(h):
            # Everything except the sum partials (whose layout is
            # fold-order dependent; the *value* is exact either way).
            d = h.to_dict()
            d.pop("sum_partials")
            return canon(d), h.sum, [h.quantile(p) for p in
                                     (1.0, 25.0, 50.0, 75.0, 99.0)]

        whole = build(samples)

        merged = build(shards[0])
        for part in shards[1:]:
            merged.merge(build(part))
        assert stats(merged) == stats(whole)

        # Reversed merge order — counts, extrema, exact sum, and every
        # quantile identical.
        reordered = build(shards[4])
        for part in reversed(shards[:4]):
            reordered.merge(build(part))
        assert stats(reordered) == stats(whole)

        # Same fold order twice -> byte-identical including partials.
        again = build(shards[0])
        for part in shards[1:]:
            again.merge(build(part))
        assert canon(again.to_dict()) == canon(merged.to_dict())

    def test_merge_rejects_mismatched_config(self):
        a = LogHistogram(1e-3, 1e3, bins_per_decade=64)
        b = LogHistogram(1e-3, 1e3, bins_per_decade=32)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_mean_and_sum_are_exact(self):
        xs = [0.1, 0.2, 0.3, 1e7, 1e-7]
        hist = LogHistogram(1e-9, 1e9)
        for x in xs:
            hist.add(x)
        assert hist.sum == math.fsum(xs)
        assert hist.mean == math.fsum(xs) / len(xs)

    def test_round_trip(self):
        hist = LogHistogram(1e-4, 1e4)
        for s in sample_sets()[0][1][:500]:
            hist.add(s)
        again = LogHistogram.from_dict(json.loads(canon(hist.to_dict())))
        assert canon(again.to_dict()) == canon(hist.to_dict())
        assert again.quantile(50.0) == hist.quantile(50.0)

    def test_empty_quantile_raises(self):
        with pytest.raises(ValueError):
            LogHistogram().quantile(50.0)


# ----------------------------------------------------------------------
# BottomKReservoir
# ----------------------------------------------------------------------

class TestBottomKReservoir:
    def test_union_equals_reservoir_of_union(self):
        keys = [f"shard{i % 13}/flow{i}" for i in range(1000)]
        whole = BottomKReservoir(k=64)
        for key in keys:
            whole.add(key, key)

        left = BottomKReservoir(k=64)
        right = BottomKReservoir(k=64)
        for i, key in enumerate(keys):
            (left if i % 2 else right).add(key, key)
        left.merge(right)
        assert canon(left.to_dict()) == canon(whole.to_dict())

        # Merge in the other direction too.
        left2 = BottomKReservoir(k=64)
        right2 = BottomKReservoir(k=64)
        for i, key in enumerate(keys):
            (left2 if i % 2 else right2).add(key, key)
        right2.merge(left2)
        assert canon(right2.to_dict()) == canon(whole.to_dict())

    def test_membership_is_pure_function_of_keys(self):
        res_fwd = BottomKReservoir(k=16)
        res_rev = BottomKReservoir(k=16)
        keys = [f"k{i}" for i in range(200)]
        for key in keys:
            res_fwd.add(key, key)
        for key in reversed(keys):
            res_rev.add(key, key)
        assert res_fwd.values() == res_rev.values()

    def test_merge_rejects_mismatched_params(self):
        with pytest.raises(ValueError):
            BottomKReservoir(k=8).merge(BottomKReservoir(k=16))

    def test_round_trip(self):
        res = BottomKReservoir(k=8, salt="fct")
        for i in range(50):
            res.add(f"flow{i}", {"fct_s": i / 10.0})
        again = BottomKReservoir.from_dict(json.loads(canon(res.to_dict())))
        assert canon(again.to_dict()) == canon(res.to_dict())
