"""Tests for the pure-periodic scheme (Eq. 2) and hybrid-path details.

The paper's S4.1 criticism of pure periodic ACKs — frequency is
unadaptable, wasting ACKs at low rates — becomes directly observable
with the ``tcp-bbr-periodic`` flavor.
"""


from repro.netsim.packet import MSS
from repro.netsim.paths import hybrid_path

from conftest import build_wired_connection


class TestPeriodicScheme:
    def test_completes_transfers(self, sim):
        conn, _ = build_wired_connection(sim, "tcp-bbr-periodic",
                                         rate_bps=20e6, rtt_s=0.04)
        conn.start_transfer(200 * MSS)
        sim.run(until=10.0)
        assert conn.completed

    def test_frequency_unadaptable_at_low_rate(self, sim):
        """Eq. (2)'s flaw (paper S4.1): at rates below 2 packets per
        alpha, periodic ACKs keep firing per interval while TACK's
        byte-counting fallback acknowledges every second packet."""
        from repro.core.flavors import make_connection
        from repro.netsim.paths import wired_path

        results = {}
        for scheme in ("tcp-bbr-periodic", "tcp-tack"):
            from repro.netsim.engine import Simulator
            local = Simulator(seed=5)
            path = wired_path(local, 20e6, 0.04)
            conn = make_connection(local, scheme, initial_rtt_s=0.04)
            conn.wire(path.forward, path.reverse)
            conn.sender.start()

            def produce(c=conn, s=local):
                c.sender.write(MSS)          # 60 packets per second
                s.call_in(1.0 / 60.0, produce)

            produce()
            local.run(until=10.0)
            results[scheme] = conn.ack_count()
        assert results["tcp-bbr-periodic"] > 1.2 * results["tcp-tack"]

    def test_bounded_at_high_rate(self, sim):
        """Eq. (2)'s virtue: frequency stays bounded under load."""
        conn, _ = build_wired_connection(sim, "tcp-bbr-periodic",
                                         rate_bps=50e6, rtt_s=0.04)
        conn.start_bulk()
        sim.run(until=5.0)
        # alpha = 25 ms -> at most ~40/s plus dup-ack bursts.
        assert conn.receiver.stats.acks_sent < 5.0 * 45


class TestHybridPathDetails:
    def test_wan_loss_recovered_over_hybrid(self, sim):
        path = hybrid_path(sim, "802.11g", wan_rate_bps=100e6,
                           wan_rtt_s=0.05, data_loss=0.02, ack_loss=0.02)
        from repro.core.flavors import make_connection

        conn = make_connection(sim, "tcp-tack", initial_rtt_s=0.06)
        conn.wire(path.forward, path.reverse)
        conn.start_transfer(300 * MSS)
        sim.run(until=30.0)
        assert conn.completed
        assert conn.receiver.stats.bytes_delivered == 300 * MSS

    def test_wlan_is_bottleneck_when_wan_fast(self, sim):
        path = hybrid_path(sim, "802.11g", wan_rate_bps=500e6,
                           wan_rtt_s=0.01)
        from repro.core.flavors import make_connection

        conn = make_connection(sim, "tcp-tack", initial_rtt_s=0.02)
        conn.wire(path.forward, path.reverse)
        conn.start_bulk()
        sim.run(until=6.0)
        goodput = conn.receiver.stats.bytes_delivered * 8 / 6.0
        # Limited by 802.11g (~25 Mbps), nowhere near the WAN's 500.
        assert 15e6 < goodput < 27e6

    def test_wan_is_bottleneck_when_slower_than_wlan(self, sim):
        path = hybrid_path(sim, "802.11n", wan_rate_bps=30e6,
                           wan_rtt_s=0.02)
        from repro.core.flavors import make_connection

        conn = make_connection(sim, "tcp-tack", initial_rtt_s=0.03)
        conn.wire(path.forward, path.reverse)
        conn.start_bulk()
        sim.run(until=6.0)
        goodput = conn.receiver.stats.bytes_delivered * 8 / 6.0
        assert 20e6 < goodput < 31e6
