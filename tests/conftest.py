"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.flavors import make_connection
from repro.netsim.engine import Simulator
from repro.netsim.paths import wired_path


@pytest.fixture
def sim() -> Simulator:
    return Simulator(seed=42)


def build_wired_connection(
    sim: Simulator,
    scheme: str = "tcp-tack",
    rate_bps: float = 20e6,
    rtt_s: float = 0.05,
    data_loss: float = 0.0,
    ack_loss: float = 0.0,
    forward_loss=None,
    reverse_loss=None,
    queue_bytes=None,
    **kwargs,
):
    """One connection across a software-emulated wired path."""
    path = wired_path(
        sim,
        rate_bps,
        rtt_s,
        queue_bytes=queue_bytes,
        data_loss=data_loss,
        ack_loss=ack_loss,
        forward_loss=forward_loss,
        reverse_loss=reverse_loss,
    )
    conn = make_connection(sim, scheme, initial_rtt_s=rtt_s, **kwargs)
    conn.wire(path.forward, path.reverse)
    return conn, path


def run_bulk(sim, conn, duration: float):
    """Start a bulk transfer and run for ``duration`` seconds."""
    conn.start_bulk()
    sim.run(until=duration)
    return conn
