"""Chaos suite: every scenario x scheme run must end *observably* —
all bytes delivered or a structured abort — with the sanitizer on and
the event loop quiet afterwards.

The full matrix is marked ``slow``; tier-1 runs a smoke subset.
"""

import pytest

from repro.chaos import (
    Blackout,
    ChaosInjector,
    DEFAULT_SCHEMES,
    FaultSchedule,
    LossEpisode,
    SCENARIOS,
    Scenario,
    get_scenario,
    run_scenario,
)
from repro.netsim.engine import Simulator
from repro.netsim.paths import wired_path

SMOKE_SCENARIOS = ("blackout", "ack-path-loss", "burst-loss")


def assert_clean_ending(result):
    """The chaos contract: ended how the scenario allows, observably."""
    assert result.outcome in ("delivered", "aborted"), result.to_dict()
    assert result.ok, result.to_dict()
    if result.outcome == "delivered":
        assert result.bytes_delivered == result.transfer_bytes
    else:
        assert result.abort is not None
        assert result.abort["reason"]
    # Flow-doctor contract: every scenario declares the diagnosis it
    # expects (dominant send-limit state or anomaly kind); the live
    # doctor's verdict must match one of the declared alternatives.
    assert result.expect_diagnosis, "scenario must declare a diagnosis"
    assert result.diagnosis_ok(), {
        "expected": result.expect_diagnosis,
        "dominant": result.dominant_diagnosis(),
        "anomalies": result.anomaly_kinds(),
    }


class TestSmoke:
    @pytest.mark.parametrize("name", SMOKE_SCENARIOS)
    @pytest.mark.parametrize("scheme", ("tcp-tack", "tcp-bbr"))
    def test_scenario_under_sanitizer(self, name, scheme):
        result = run_scenario(get_scenario(name), scheme=scheme, simsan=True)
        assert_clean_ending(result)

    def test_dead_path_aborts_structurally(self):
        result = run_scenario(get_scenario("dead-path"), scheme="tcp-tack",
                              simsan=True)
        assert result.outcome == "aborted"
        assert result.abort["reason"] == "rto_exhausted"
        assert result.ok

    def test_fault_log_records_on_off_pairs(self):
        result = run_scenario(get_scenario("blackout"), scheme="tcp-tack")
        kinds = [(kind, action) for _, kind, action in result.fault_log]
        assert ("blackout", "on") in kinds
        assert ("blackout", "off") in kinds

    def test_same_seed_is_deterministic(self):
        a = run_scenario(get_scenario("burst-loss"), scheme="tcp-tack", seed=5)
        b = run_scenario(get_scenario("burst-loss"), scheme="tcp-tack", seed=5)
        assert a.to_dict() == b.to_dict()

    def test_chaos_detached_is_zero_cost(self):
        # Without an injector armed the link must behave exactly as
        # before the chaos subsystem existed: no impairment state.
        sim = Simulator(seed=1)
        path = wired_path(sim, 20e6, 0.04)
        link = path.forward_link
        assert link._imp is None or not link._imp.active()


@pytest.mark.slow
class TestFullMatrix:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    @pytest.mark.parametrize("scheme", DEFAULT_SCHEMES)
    def test_terminates_with_delivery_or_abort(self, name, scheme):
        result = run_scenario(get_scenario(name), scheme=scheme, simsan=True)
        assert_clean_ending(result)


class TestScheduleValidation:
    def test_same_kind_overlap_rejected(self):
        schedule = (FaultSchedule()
                    .add(Blackout(1.0, 2.0))
                    .add(Blackout(2.5, 2.0)))
        with pytest.raises(ValueError):
            schedule.validate()

    def test_disjoint_windows_accepted(self):
        (FaultSchedule()
         .add(Blackout(1.0, 1.0))
         .add(Blackout(3.0, 1.0))
         .validate())

    def test_different_directions_may_overlap(self):
        (FaultSchedule()
         .add(LossEpisode(1.0, 2.0, rate=0.5, direction="forward"))
         .add(LossEpisode(1.5, 2.0, rate=0.5, direction="reverse"))
         .validate())

    def test_invalid_direction_rejected(self):
        with pytest.raises(ValueError):
            Blackout(1.0, 1.0, direction="sideways")

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            Blackout(-1.0, 1.0)

    def test_rearm_rejected(self):
        sim = Simulator(seed=1)
        path = wired_path(sim, 20e6, 0.04)
        injector = ChaosInjector(
            sim, path, FaultSchedule().add(Blackout(1.0, 1.0)))
        injector.arm()
        with pytest.raises(RuntimeError):
            injector.arm()

    def test_unknown_scenario_lists_names(self):
        with pytest.raises(KeyError, match="blackout"):
            get_scenario("no-such-scenario")

    def test_scenario_expect_validated(self):
        with pytest.raises(ValueError):
            Scenario(name="x", description="d", build=FaultSchedule,
                     expect="maybe")


class TestCli:
    def test_list_json(self, capsys):
        from repro.chaos.cli import main
        assert main(["list", "--json"]) == 0
        import json
        names = [row["name"] for row in json.loads(capsys.readouterr().out)]
        assert "blackout" in names and "dead-path" in names

    def test_run_single_scenario_json(self, capsys, tmp_path):
        from repro.chaos.cli import main
        import json
        trace = tmp_path / "chaos.jsonl"
        code = main(["run", "--scenario", "blackout", "--scheme", "tcp-tack",
                     "--trace", str(trace), "--json"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert len(report["runs"]) == 1
        assert report["runs"][0]["ok"] is True
        assert trace.exists() and trace.stat().st_size > 0

    def test_unknown_scenario_is_usage_error(self, capsys):
        from repro.chaos.cli import main
        assert main(["run", "--scenario", "nope"]) == 2
