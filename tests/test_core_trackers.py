"""Unit tests for the TACK core trackers: params, OWD timing, PKT.SEQ
loss detection, rate sync, and the retransmit governor."""

import pytest

from repro.core.loss_detect import PktSeqTracker, RetransmitGovernor
from repro.core.owd_timing import ReceiverOwdTracker, SenderRttMinEstimator
from repro.core.params import TackParams
from repro.core.rate_sync import AckPathLossEstimator, ReceiverRateEstimator
from repro.netsim.packet import MSS


class TestTackParams:
    def test_defaults_match_paper(self):
        p = TackParams()
        assert p.beta == 4.0
        assert p.ack_count_l == 2

    def test_eq3_periodic_regime(self):
        """Large bdp: f = beta / RTT_min."""
        p = TackParams()
        f = p.tack_frequency(bw_bps=100e6, rtt_min_s=0.1)
        assert f == pytest.approx(4.0 / 0.1)

    def test_eq3_byte_counting_regime(self):
        """Small bw: f = bw / (L * MSS)."""
        p = TackParams()
        f = p.tack_frequency(bw_bps=0.5e6, rtt_min_s=0.1)
        assert f == pytest.approx(0.5e6 / (2 * MSS * 8))

    def test_regime_boundary(self):
        p = TackParams()
        assert p.is_periodic_regime(4 * 2 * MSS)
        assert not p.is_periodic_regime(4 * 2 * MSS - 1)

    def test_paper_fig8b_numbers(self):
        """Fig. 8(b): 802.11ac + RTT 10/80/200 ms -> 400/50/20 Hz."""
        p = TackParams()
        bw = 590e6
        assert p.tack_frequency(bw, 0.010) == pytest.approx(400.0)
        assert p.tack_frequency(bw, 0.080) == pytest.approx(50.0)
        assert p.tack_frequency(bw, 0.200) == pytest.approx(20.0)

    def test_paper_fig8b_802_11b(self):
        """Fig. 8(b): 802.11b (7 Mbps) at RTT 10 ms stays byte-counting
        at ~294 Hz, same as TCP delayed ACK."""
        p = TackParams()
        f = p.tack_frequency(7e6, 0.010)
        assert f == pytest.approx(7e6 / (2 * 1500 * 8), rel=0.01)
        assert 280 < f < 300

    def test_validation(self):
        with pytest.raises(ValueError):
            TackParams(beta=0)
        with pytest.raises(ValueError):
            TackParams(ack_count_l=0)
        with pytest.raises(ValueError):
            TackParams(timing_mode="bogus")

    def test_copy_overrides(self):
        p = TackParams()
        q = p.copy(rich=False, beta=2.0)
        assert q.beta == 2.0
        assert not q.rich
        assert p.beta == 4.0


class TestPktSeqTracker:
    def test_in_order_no_events(self):
        t = PktSeqTracker()
        assert all(t.on_packet(i) is None for i in range(1, 10))
        assert t.largest_seen == 9
        assert t.outstanding_holes == 0

    def test_gap_event_identifies_missing_range(self):
        t = PktSeqTracker()
        t.on_packet(1)
        event = t.on_packet(4)
        assert event is not None
        assert event.second_largest == 1
        assert event.largest == 4
        assert event.missing_range() == (2, 3)
        assert event.missing_count == 2

    def test_hole_filled_by_reordered_arrival(self):
        t = PktSeqTracker()
        t.on_packet(1)
        t.on_packet(3)
        assert t.outstanding_holes == 1
        t.on_packet(2)
        assert t.outstanding_holes == 0

    def test_retransmission_loss_detected(self):
        """Paper S5.1 example: retransmissions carry new numbers, so a
        lost retransmission creates a second gap event."""
        t = PktSeqTracker()
        t.on_packet(1)
        ev1 = t.on_packet(3)  # original pkt 2 lost
        assert ev1.missing_range() == (2, 2)
        # Retransmission (pkt_seq 4) also lost; pkt 5 arrives.
        ev2 = t.on_packet(5)
        assert ev2.missing_range() == (4, 4)

    def test_loss_rate(self):
        t = PktSeqTracker()
        for i in (1, 2, 4, 5, 6, 8, 9, 10):
            t.on_packet(i)
        assert t.loss_rate() == pytest.approx(2 / 10)

    def test_first_packet_large_number_no_event(self):
        # largest_seen == 0 guard: the very first arrival never
        # generates a gap (handshake may consume numbers).
        t = PktSeqTracker()
        assert t.on_packet(3) is None


class TestRetransmitGovernor:
    def test_first_retransmit_allowed(self):
        g = RetransmitGovernor()
        assert g.may_retransmit(0, now=1.0, srtt_s=0.1)

    def test_suppressed_within_srtt(self):
        g = RetransmitGovernor()
        g.on_retransmit(0, now=1.0)
        assert not g.may_retransmit(0, now=1.05, srtt_s=0.1)
        assert g.may_retransmit(0, now=1.1, srtt_s=0.1)

    def test_ack_clears_state(self):
        g = RetransmitGovernor()
        g.on_retransmit(0, now=1.0)
        g.on_acked(0)
        assert len(g) == 0
        assert g.may_retransmit(0, now=1.01, srtt_s=0.1)


class TestReceiverOwdTracker:
    def test_owd_computed_from_timestamps(self):
        t = ReceiverOwdTracker()
        owd = t.on_packet(departure_ts=1.0, arrival_ts=1.05)
        assert owd == pytest.approx(0.05)

    def test_ewma_smooths(self):
        t = ReceiverOwdTracker(ewma_gain=0.5)
        t.on_packet(0.0, 0.1)
        t.on_packet(1.0, 1.2)
        assert t.smoothed_owd == pytest.approx(0.5 * 0.1 + 0.5 * 0.2)

    def test_advanced_mode_picks_min_owd_packet(self):
        t = ReceiverOwdTracker(mode="advanced")
        t.on_packet(0.0, 0.10)   # owd 0.10
        t.on_packet(1.0, 1.04)   # owd 0.04  <- min
        t.on_packet(2.0, 2.08)   # owd 0.08
        ref = t.take_reference()
        assert ref.departure_ts == pytest.approx(1.0)
        assert ref.owd == pytest.approx(0.04)

    def test_naive_mode_picks_first_packet(self):
        # Legacy sampling times the oldest packet covered by the ACK.
        t = ReceiverOwdTracker(mode="naive")
        t.on_packet(0.0, 0.04)
        t.on_packet(1.0, 1.10)
        ref = t.take_reference()
        assert ref.departure_ts == pytest.approx(0.0)

    def test_reference_resets_per_interval(self):
        t = ReceiverOwdTracker()
        t.on_packet(0.0, 0.05)
        assert t.take_reference() is not None
        assert t.take_reference() is None

    def test_validation(self):
        with pytest.raises(ValueError):
            ReceiverOwdTracker(ewma_gain=0.0)
        with pytest.raises(ValueError):
            ReceiverOwdTracker(mode="wrong")


class TestSenderRttMinEstimator:
    def test_rtt_sample_corrects_for_tack_delay(self):
        """Paper Fig. 4(b): RTT = t1 - t0 - delta_t."""
        e = SenderRttMinEstimator()
        sample = e.on_tack(tack_arrival_ts=1.0, echo_departure_ts=0.7, tack_delay=0.1)
        assert sample == pytest.approx(0.2)
        assert e.rtt_min() == pytest.approx(0.2)

    def test_min_filter_keeps_smallest(self):
        e = SenderRttMinEstimator()
        e.on_tack(1.0, 0.7, 0.1)    # 0.2
        e.on_tack(2.0, 1.85, 0.0)   # 0.15
        e.on_tack(3.0, 2.5, 0.1)    # 0.4
        assert e.rtt_min() == pytest.approx(0.15)

    def test_handshake_seeds(self):
        e = SenderRttMinEstimator()
        e.on_handshake(0.08, now=0.0)
        assert e.has_estimate
        assert e.rtt_min() == pytest.approx(0.08)

    def test_missing_reference_returns_none(self):
        e = SenderRttMinEstimator()
        assert e.on_tack(1.0, None, None) is None

    def test_negative_sample_rejected(self):
        e = SenderRttMinEstimator()
        assert e.on_tack(1.0, 1.5, 0.0) is None
        assert not e.has_estimate


class TestReceiverRateEstimator:
    def _spread(self, r, total_bytes, start, end, chunks=10):
        """Deliver total_bytes uniformly over [start, end]."""
        step = (end - start) / (chunks - 1)
        for i in range(chunks):
            r.on_data(total_bytes // chunks, start + i * step)

    def test_interval_rate_over_arrival_span(self):
        r = ReceiverRateEstimator()
        self._spread(r, 12_500, 0.0, 0.1)
        rate = r.close_interval(now=0.1)
        assert rate == pytest.approx(1e6, rel=0.01)

    def test_trailing_idle_not_counted(self):
        """An idle tail (app-limited flow) must not dilute the rate."""
        r = ReceiverRateEstimator()
        self._spread(r, 12_500, 0.0, 0.1)
        rate = r.close_interval(now=2.0)  # closed long after last arrival
        assert rate == pytest.approx(1e6, rel=0.01)

    def test_short_interval_accumulates(self):
        r = ReceiverRateEstimator(min_interval_s=0.01)
        r.on_data(1000, now=0.0)
        assert r.close_interval(now=0.001) is None
        r.on_data(1000, now=0.02)
        rate = r.close_interval(now=0.02)
        assert rate == pytest.approx(2000 * 8 / 0.02)

    def test_burst_rate_floored_by_min_interval(self):
        """A same-instant burst is rated over min_interval, not zero."""
        r = ReceiverRateEstimator(min_interval_s=0.002)
        r.on_data(12_000, now=0.0)
        r.on_data(12_000, now=0.0)
        rate = r.close_interval(now=0.01)
        assert rate == pytest.approx(24_000 * 8 / 0.002)

    def test_bw_is_windowed_max(self):
        r = ReceiverRateEstimator()
        self._spread(r, 12_500, 0.0, 0.1)
        r.close_interval(0.1)       # 1 Mbps
        self._spread(r, 125_000, 0.1, 0.2)
        r.close_interval(0.2)       # 10 Mbps
        self._spread(r, 12_500, 0.2, 0.3)
        r.close_interval(0.3)       # 1 Mbps again
        assert r.bw_bps(0.3) == pytest.approx(10e6, rel=0.01)

    def test_empty_interval(self):
        r = ReceiverRateEstimator()
        assert r.close_interval(1.0) is None
        assert r.bw_bps(default=7.0) == 7.0


class TestAckPathLossEstimator:
    def test_no_loss_keeps_estimate_zero(self):
        e = AckPathLossEstimator(window=8)
        for seq in range(100):
            e.on_feedback(seq)
        assert e.loss_rate == 0.0

    def test_gaps_measured_exactly(self):
        # Every other feedback dropped: spans fold at 50% loss and the
        # EWMA converges there.
        e = AckPathLossEstimator(window=8, ewma_gain=1.0)
        for seq in range(0, 64, 2):
            e.on_feedback(seq)
        assert e.loss_rate == pytest.approx(0.5, abs=0.07)

    def test_app_limited_rate_does_not_fake_loss(self):
        # The old expected-count estimator inferred loss from a low
        # feedback *rate*; sequence gaps cannot make that mistake —
        # arrival timing is invisible to the estimator by design.
        e = AckPathLossEstimator(window=8)
        for seq in range(40):  # contiguous, however slowly they came
            e.on_feedback(seq)
        assert e.loss_rate == 0.0

    def test_no_estimate_before_first_window_folds(self):
        e = AckPathLossEstimator(window=100)
        for seq in range(0, 50, 2):
            e.on_feedback(seq)
        assert e.loss_rate == 0.0

    def test_unnumbered_feedback_ignored(self):
        e = AckPathLossEstimator(window=4)
        for _ in range(20):
            e.on_feedback(None)
        assert e.loss_rate == 0.0

    def test_recovers_after_blackout_lifts(self):
        e = AckPathLossEstimator(window=8, ewma_gain=0.5)
        for seq in range(0, 80, 4):  # 75% loss regime
            e.on_feedback(seq)
        assert e.loss_rate > 0.5
        for seq in range(80, 400):   # clean regime
            e.on_feedback(seq)
        assert e.loss_rate < 0.01

    def test_straggler_below_window_base_ignored(self):
        e = AckPathLossEstimator(window=4, ewma_gain=1.0)
        for seq in (0, 1, 2, 3):
            e.on_feedback(seq)
        assert e.loss_rate == 0.0
        e.on_feedback(2)  # reordered duplicate from the folded window
        for seq in (4, 5, 6, 7):
            e.on_feedback(seq)
        assert e.loss_rate == 0.0

    def test_reset_clears_state(self):
        e = AckPathLossEstimator(window=4, ewma_gain=1.0)
        for seq in (0, 3):
            e.on_feedback(seq)
        assert e.loss_rate == pytest.approx(0.5)
        e.reset()
        assert e.loss_rate == 0.0
        for seq in (100, 101, 102, 103):
            e.on_feedback(seq)
        assert e.loss_rate == 0.0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AckPathLossEstimator(window=1)
        with pytest.raises(ValueError):
            AckPathLossEstimator(ewma_gain=0.0)
        with pytest.raises(ValueError):
            AckPathLossEstimator(ewma_gain=1.5)
