"""Tests for the unit/dimension checker (REP101-REP105): the unit
algebra, the catalog, golden-file fixtures, the inter-procedural call
graph, the ratchet baseline, and the parallel engine."""

import json
import re
from pathlib import Path

import pytest

from repro.lint import LintConfig, lint_paths, load_config
from repro.lint.engine import PragmaSet, _extract_pragmas, parse_pragmas
from repro.lint.findings import Finding
from repro.lint.units import (
    BPS,
    BYTES,
    DIMENSIONLESS,
    HZ,
    PKTS,
    SECONDS,
    Baseline,
    UnitError,
    UnitsConfig,
    analyze_units,
    parse_unit,
)

FIXTURES = Path(__file__).parent / "fixtures" / "units"

#: Strict-scope-everywhere config so REP105 applies to fixture paths.
STRICT = UnitsConfig(strict_paths=("*",))

_EXPECT_RE = re.compile(r"#\s*expect:\s*(REP\d{3})")


def expected_findings(path: Path):
    """``(line, code)`` pairs from ``# expect: REPxxx`` markers."""
    out = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        for code in _EXPECT_RE.findall(line):
            out.append((lineno, code))
    return sorted(out)


def actual_findings(findings, path: Path):
    return sorted((f.line, f.code) for f in findings
                  if f.path == str(path))


# ----------------------------------------------------------------------
# unit algebra
# ----------------------------------------------------------------------
class TestAlgebra:
    def test_parse_named_units(self):
        assert parse_unit("s") == SECONDS
        assert parse_unit("bytes") == BYTES
        assert parse_unit("bps") == BPS
        assert parse_unit("hz") == HZ
        assert parse_unit("pkts") == PKTS

    def test_scale_aliases_share_dimension(self):
        assert parse_unit("ms") == SECONDS
        assert parse_unit("us") == SECONDS
        assert parse_unit("bits") == BYTES
        assert parse_unit("mbps") == BPS

    def test_quotient_simplification(self):
        assert parse_unit("bytes/s") == BPS
        assert parse_unit("bytes") .div(SECONDS) == BPS
        assert BPS.mul(SECONDS) == BYTES

    def test_hz_is_inverse_seconds(self):
        assert parse_unit("1/s") == HZ
        assert SECONDS.invert() == HZ
        assert SECONDS.mul(HZ).is_dimensionless

    def test_commutativity(self):
        assert SECONDS.mul(BPS) == BPS.mul(SECONDS)
        assert BYTES.mul(HZ) == HZ.mul(BYTES)

    def test_self_division_is_dimensionless(self):
        assert SECONDS.div(SECONDS).is_dimensionless
        assert BPS.div(BPS).is_dimensionless

    def test_pow(self):
        assert SECONDS.pow(2).div(SECONDS) == SECONDS
        assert SECONDS.pow(0).is_dimensionless

    def test_compatible(self):
        assert SECONDS.compatible(SECONDS)
        assert not SECONDS.compatible(BYTES)
        assert DIMENSIONLESS.compatible(DIMENSIONLESS)

    def test_display(self):
        assert str(SECONDS) == "s"
        assert str(BYTES.div(SECONDS)) == "bps"
        assert str(SECONDS.invert()) == "hz"

    def test_bad_spelling_raises(self):
        with pytest.raises(UnitError):
            parse_unit("furlongs")


# ----------------------------------------------------------------------
# catalog
# ----------------------------------------------------------------------
class TestCatalog:
    def test_suffix_lookup(self):
        uc = UnitsConfig()
        assert uc.name_unit("rtt_s") == SECONDS
        assert uc.name_unit("queue_bytes") == BYTES
        assert uc.name_unit("rate_bps") == BPS
        assert uc.name_unit("loss_fraction") == DIMENSIONLESS

    def test_prefix_counter_idiom(self):
        uc = UnitsConfig()
        assert uc.name_unit("bytes_delivered") == BYTES
        assert uc.name_unit("packets_lost") == PKTS

    def test_exact_names(self):
        uc = UnitsConfig()
        assert uc.name_unit("MSS") == BYTES
        assert uc.name_unit("now") == SECONDS
        assert uc.name_unit("nbytes") == BYTES

    def test_dimensionless_names_win(self):
        uc = UnitsConfig()
        assert uc.name_unit("beta") == DIMENSIONLESS
        assert uc.name_unit("seed") == DIMENSIONLESS

    def test_bare_name_says_nothing(self):
        assert UnitsConfig().name_unit("value") is None

    def test_signature_leaf_fallback(self):
        uc = UnitsConfig()
        params, returns = uc.signature("Simulator.now")
        assert returns == SECONDS
        assert uc.signature("no.such.thing") is None


# ----------------------------------------------------------------------
# golden fixtures, one file per rule
# ----------------------------------------------------------------------
class TestGoldenFixtures:
    @pytest.mark.parametrize("name", ["rep101", "rep102", "rep103",
                                      "rep104", "rep105"])
    def test_fixture_matches_markers(self, name):
        path = FIXTURES / f"{name}.py"
        findings = analyze_units([path], STRICT)
        assert actual_findings(findings, path) == expected_findings(path)
        own_code = name.upper()
        assert sum(1 for f in findings if f.code == own_code) >= 5

    def test_cross_module_inference(self):
        """A unit learned from a callee in one module is enforced at a
        call site in another module (the REP102 acceptance demo)."""
        producer = FIXTURES / "cross" / "producer.py"
        consumer = FIXTURES / "cross" / "consumer.py"
        findings = analyze_units([producer, consumer], STRICT)
        assert actual_findings(findings, producer) == []
        assert actual_findings(findings, consumer) == \
            expected_findings(consumer)
        assert all(f.code == "REP102" for f in findings)


# ----------------------------------------------------------------------
# baseline ratchet
# ----------------------------------------------------------------------
class TestBaseline:
    def _finding(self, path="src/mod.py", code="REP104", msg="m",
                 line=3):
        return Finding(code=code, message=msg, path=path, line=line,
                       col=0)

    def test_suppresses_with_multiplicity(self, tmp_path):
        base = Baseline.from_findings(
            [self._finding(line=1), self._finding(line=9)], tmp_path)
        fresh = Baseline.load(tmp_path / "missing.json")
        assert fresh.size == 0
        assert base.suppresses(self._finding(line=4))
        assert base.suppresses(self._finding(line=8))
        # Multiplicity exhausted: a third identical finding is new.
        assert not base.suppresses(self._finding(line=12))

    def test_line_moves_do_not_invalidate(self, tmp_path):
        base = Baseline.from_findings([self._finding(line=10)], tmp_path)
        assert base.suppresses(self._finding(line=999))
        assert base.stale_entries() == []

    def test_stale_entries_ratchet(self, tmp_path):
        base = Baseline.from_findings(
            [self._finding(), self._finding(msg="other")], tmp_path)
        base.suppresses(self._finding())
        stale = base.stale_entries()
        assert len(stale) == 1
        assert stale[0].message == "other"

    def test_save_load_roundtrip(self, tmp_path):
        out = tmp_path / "units.baseline.json"
        base = Baseline.from_findings(
            [self._finding(), self._finding(), self._finding(msg="b")],
            tmp_path)
        base.save(out)
        payload = json.loads(out.read_text())
        assert payload["schema"] == "reprolint-baseline"
        loaded = Baseline.load(out)
        assert loaded.entries == base.entries
        assert loaded.size == 3

    def test_paths_relative_to_baseline_dir(self, tmp_path):
        f = self._finding(path=str(tmp_path / "pkg" / "mod.py"))
        base = Baseline.from_findings([f], tmp_path)
        (key,) = base.entries
        assert key[0] == "pkg/mod.py"


# ----------------------------------------------------------------------
# pragma engine rework
# ----------------------------------------------------------------------
class TestPragmaEngine:
    def test_pragma_inside_string_is_inert(self):
        source = (
            "x = 1\n"
            "note = '# reprolint: disable=REP104'\n"
            "y = 2\n"
        )
        assert _extract_pragmas(source) == []

    def test_trailing_pragma_covers_logical_line(self):
        source = (
            "value = compute(\n"
            "    first,\n"
            "    second,\n"
            ")  # reprolint: disable=REP104\n"
        )
        per_line, file_wide = parse_pragmas(source)
        assert file_wide == set()
        assert set(per_line) == {1, 2, 3, 4}
        assert per_line[1] == {"REP104"}

    def test_standalone_pragma_covers_only_its_line(self):
        source = (
            "# reprolint: disable=REP104\n"
            "x = 1\n"
        )
        per_line, _ = parse_pragmas(source)
        assert set(per_line) == {1}

    def test_pragma_suppresses_units_finding(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(
            "def f(queue_bytes):\n"
            "    timeout_s = queue_bytes  # reprolint: disable=REP104\n"
            "    return timeout_s\n"
        )
        result = lint_paths([mod], LintConfig(), units=True)
        assert result.findings == []

    def test_unused_pragma_reported(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text("x = 1  # reprolint: disable=REP104\n")
        result = lint_paths([mod], LintConfig(), units=True,
                            report_unused_pragmas=True)
        assert [f.code for f in result.findings] == ["REP009"]

    def test_used_pragma_not_reported(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(
            "def f(queue_bytes):\n"
            "    timeout_s = queue_bytes  # reprolint: disable=REP104\n"
            "    return timeout_s\n"
        )
        result = lint_paths([mod], LintConfig(), units=True,
                            report_unused_pragmas=True)
        assert result.findings == []

    def test_unused_code_on_blanket_pragma(self, tmp_path):
        # A coded pragma whose rule never ran (not in the active set)
        # must not be called unused.
        mod = tmp_path / "mod.py"
        mod.write_text("x = 1  # reprolint: disable=REP104\n")
        result = lint_paths([mod], LintConfig(), units=False,
                            report_unused_pragmas=True)
        assert result.findings == []

    def test_suppresses_per_file_rules_still(self):
        source = "import random\nr = random.random()  # reprolint: disable=REP002\n"
        pragmas = PragmaSet(source)
        finding = Finding(code="REP002", message="m", path="x.py",
                          line=2, col=4)
        assert pragmas.suppresses(finding)


# ----------------------------------------------------------------------
# engine integration: parallelism, exclusion, the tree itself
# ----------------------------------------------------------------------
class TestEngineIntegration:
    def test_jobs_output_identical(self, tmp_path):
        for i in range(6):
            (tmp_path / f"m{i}.py").write_text(
                "def f(queue_bytes):\n"
                f"    timeout_s = queue_bytes  # site {i}\n"
                "    return timeout_s\n"
            )
        serial = lint_paths([tmp_path], LintConfig(), units=True, jobs=1)
        parallel = lint_paths([tmp_path], LintConfig(), units=True, jobs=3)
        assert [f.to_dict() for f in serial.findings] == \
            [f.to_dict() for f in parallel.findings]
        assert len(serial.findings) == 6

    def test_exclude_globs_skip_files(self, tmp_path):
        fixtures = tmp_path / "tests" / "fixtures" / "units"
        fixtures.mkdir(parents=True)
        (fixtures / "bad.py").write_text(
            "def f(queue_bytes):\n    timeout_s = queue_bytes\n")
        result = lint_paths([tmp_path], LintConfig(), units=True)
        assert result.findings == []
        assert result.files_checked == 0

    def test_baseline_consumed_through_lint_paths(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(
            "def f(queue_bytes):\n"
            "    timeout_s = queue_bytes\n"
            "    return timeout_s\n"
        )
        first = lint_paths([mod], LintConfig(), units=True)
        assert len(first.findings) == 1
        baseline = Baseline.from_findings(first.findings, tmp_path)
        second = lint_paths([mod], LintConfig(), units=True,
                            baseline=baseline)
        assert second.findings == []
        assert second.baselined == 1
        assert second.stale_baseline == []

    def test_stale_baseline_surfaces(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text("x = 1\n")
        ghost = Finding(code="REP104", message="gone", path=str(mod),
                        line=1, col=0)
        baseline = Baseline.from_findings([ghost], tmp_path)
        result = lint_paths([mod], LintConfig(), units=True,
                            baseline=baseline)
        assert result.findings == []
        assert len(result.stale_baseline) == 1

    def test_tree_clean_modulo_baseline(self):
        """The whole simulator passes the unit checker with only the
        committed baseline's entries suppressed."""
        root = Path(__file__).resolve().parents[1]
        config = load_config(root / "pyproject.toml")
        baseline = Baseline.load(root / "reprolint-units.baseline.json")
        result = lint_paths([root / "src"], config, units=True,
                            jobs=2, baseline=baseline)
        assert result.findings == []
        assert result.stale_baseline == []
