"""Policy lifecycle and timer-hygiene tests across all ACK policies."""

import pytest

from repro.ack import (
    ByteCountingAck,
    DelayedAck,
    PerPacketAck,
    PeriodicAck,
    TackPolicy,
)
from repro.netsim.packet import MSS, make_data_packet
from repro.transport.receiver import TransportReceiver

ALL_POLICIES = [
    PerPacketAck,
    DelayedAck,
    lambda: ByteCountingAck(4),
    PeriodicAck,
    TackPolicy,
]


class StubPort:
    def __init__(self):
        self.sent = []

    def send(self, packet):
        self.sent.append(packet)
        return True

    def connect(self, sink):
        pass


def feed(sim, rx, n, start=0):
    for i in range(start, start + n):
        pkt = make_data_packet(i * MSS, i + 1)
        pkt.sent_at = sim.now()
        pkt.meta["rtt_min"] = 0.05
        rx.on_packet(pkt)


class TestLifecycle:
    @pytest.mark.parametrize("factory", ALL_POLICIES)
    def test_detach_cancels_pending_timers(self, sim, factory):
        policy = factory()
        rx = TransportReceiver(sim, policy)
        rx.connect(StubPort())
        feed(sim, rx, 1)
        rx.close()
        pending_before = sim.pending()
        sim.run(until=5.0)
        # No policy timer may fire after detach (no exceptions, and the
        # queue drains or only cancelled events remain).
        assert sim.pending() <= pending_before

    @pytest.mark.parametrize("factory", ALL_POLICIES)
    def test_on_close_flushes_final_ack(self, sim, factory):
        policy = factory()
        rx = TransportReceiver(sim, policy)
        port = StubPort()
        rx.connect(port)
        feed(sim, rx, 1)
        rx.close()
        # Every policy acknowledges the tail on close.
        assert port.sent, f"{policy.name} sent nothing on close"
        fb = port.sent[-1].meta["fb"]
        assert fb.cum_ack == MSS

    @pytest.mark.parametrize("factory", ALL_POLICIES)
    def test_no_feedback_without_data(self, sim, factory):
        policy = factory()
        rx = TransportReceiver(sim, policy)
        port = StubPort()
        rx.connect(port)
        sim.run(until=2.0)
        assert port.sent == []

    @pytest.mark.parametrize("factory", ALL_POLICIES)
    def test_policy_survives_burst_then_silence(self, sim, factory):
        policy = factory()
        rx = TransportReceiver(sim, policy)
        port = StubPort()
        rx.connect(port)
        feed(sim, rx, 20)
        sim.run(until=3.0)
        n_after_burst = len(port.sent)
        sim.run(until=6.0)
        # Silence generates no further feedback (timers go dormant).
        assert len(port.sent) == n_after_burst
        # And everything got acknowledged eventually.
        assert port.sent[-1].meta["fb"].cum_ack == 20 * MSS


class TestPolicyRestart:
    @pytest.mark.parametrize("factory", ALL_POLICIES)
    def test_second_burst_after_dormancy(self, sim, factory):
        """Policies must re-arm cleanly when traffic resumes."""
        policy = factory()
        rx = TransportReceiver(sim, policy)
        port = StubPort()
        rx.connect(port)
        feed(sim, rx, 4)
        sim.run(until=2.0)
        first = len(port.sent)
        feed(sim, rx, 4, start=4)
        sim.run(until=4.0)
        assert len(port.sent) > first
        assert port.sent[-1].meta["fb"].cum_ack == 8 * MSS
