"""Scheme-level behavioral tests: every flavor's distinguishing
property is observable end to end."""

import pytest

from repro.netsim.packet import MSS

from conftest import build_wired_connection


class TestAckPolicyBehaviorEndToEnd:
    def test_perpacket_acks_once_per_data_packet(self, sim):
        conn, _ = build_wired_connection(sim, "tcp-bbr-perpacket",
                                         rate_bps=10e6, rtt_s=0.02)
        conn.start_transfer(100 * MSS)
        sim.run(until=5.0)
        assert conn.completed
        acks = conn.receiver.stats.acks_sent
        data = conn.receiver.stats.data_packets
        assert acks == pytest.approx(data, rel=0.05)

    def test_delayed_halves_ack_count(self, sim):
        conn, _ = build_wired_connection(sim, "tcp-bbr", rate_bps=10e6,
                                         rtt_s=0.02)
        conn.start_transfer(100 * MSS)
        sim.run(until=5.0)
        acks = conn.receiver.stats.acks_sent
        assert acks == pytest.approx(50, rel=0.2)

    def test_byte_counting_monotone_in_l(self):
        """More aggressive thinning -> strictly fewer ACKs (the timer
        still flushes sub-L tails, so counts exceed the ideal n/L)."""
        from repro.netsim.engine import Simulator

        counts = {}
        for scheme in ("tcp-bbr", "tcp-bbr-l4", "tcp-bbr-l8", "tcp-bbr-l16"):
            sim = Simulator(seed=42)
            conn, _ = build_wired_connection(sim, scheme, rate_bps=10e6,
                                             rtt_s=0.02)
            conn.start_transfer(320 * MSS)
            sim.run(until=6.0)
            assert conn.completed
            counts[scheme] = conn.receiver.stats.acks_sent
        # Every thinned variant sends fewer ACKs than delayed ACK; the
        # exact ordering between mid-L variants is not monotone because
        # sparse ACK clocks reshape the send pattern itself (Fig 10(b)'s
        # disturbance effect).
        for scheme in ("tcp-bbr-l4", "tcp-bbr-l8", "tcp-bbr-l16"):
            assert counts[scheme] < counts["tcp-bbr"]
        assert counts["tcp-bbr-l16"] < 0.5 * counts["tcp-bbr-l4"]

    def test_tack_uses_tack_packets_only(self, sim):
        conn, _ = build_wired_connection(sim, "tcp-tack", rate_bps=10e6,
                                         rtt_s=0.02)
        conn.start_transfer(100 * MSS)
        sim.run(until=5.0)
        assert conn.receiver.stats.acks_sent == 0
        assert conn.receiver.stats.tacks_sent > 0


class TestCcBehaviorEndToEnd:
    @pytest.mark.parametrize("scheme", ["tcp-cubic", "tcp-reno", "tcp-vegas",
                                        "tcp-tack-cubic"])
    def test_all_ccs_fill_half_the_pipe(self, sim, scheme):
        conn, _ = build_wired_connection(sim, scheme, rate_bps=20e6,
                                         rtt_s=0.04)
        conn.start_bulk()
        sim.run(until=8.0)
        goodput = conn.receiver.stats.bytes_delivered * 8 / 8.0
        assert goodput > 10e6, f"{scheme} reached only {goodput/1e6:.1f} Mbps"

    def test_cubic_fills_deep_buffer_fully(self, sim):
        conn, _ = build_wired_connection(sim, "tcp-cubic", rate_bps=20e6,
                                         rtt_s=0.04,
                                         queue_bytes=2 * 100_000)
        conn.start_bulk()
        sim.run(until=10.0)
        goodput = conn.receiver.stats.bytes_delivered * 8 / 10.0
        assert goodput > 0.85 * 20e6

    def test_vegas_keeps_queue_small(self, sim):
        conn, path = build_wired_connection(sim, "tcp-vegas", rate_bps=20e6,
                                            rtt_s=0.04)
        conn.start_bulk()
        sim.run(until=10.0)
        # Vegas targets a few packets of queue, far below the bdp-sized
        # buffer that a loss-based scheme would fill.
        assert path.wan.forward.queue.peak_bytes < 0.7 * 100_000


class TestTackCubicComposition:
    def test_tack_mechanism_with_cubic_controller(self, sim):
        """The TACK mechanism is controller-agnostic (paper S5.3)."""
        conn, _ = build_wired_connection(sim, "tcp-tack-cubic",
                                         rate_bps=20e6, rtt_s=0.05,
                                         data_loss=0.005)
        conn.start_transfer(400 * MSS)
        sim.run(until=20.0)
        assert conn.completed
        assert conn.receiver.stats.tacks_sent > 0
        assert conn.receiver.stats.acks_sent == 0


class TestSchemeDeterminism:
    @pytest.mark.parametrize("scheme", ["tcp-tack", "tcp-bbr"])
    def test_same_seed_identical_outcome(self, scheme):
        from repro.netsim.engine import Simulator

        outcomes = []
        for _ in range(2):
            sim = Simulator(seed=123)
            conn, _ = build_wired_connection(sim, scheme, rate_bps=20e6,
                                             rtt_s=0.05, data_loss=0.01)
            conn.start_bulk()
            sim.run(until=5.0)
            outcomes.append((
                conn.receiver.stats.bytes_delivered,
                conn.sender.stats.retransmissions,
                conn.ack_count(),
            ))
        assert outcomes[0] == outcomes[1]
