"""Deeper BBR state-machine behaviors (gain cycle, drain, recovery)."""

import pytest

from repro.cc.base import RateSample
from repro.cc.bbr import (
    BBR,
    DRAIN,
    PROBE_BW,
    PROBE_RTT,
    _PROBE_BW_GAINS,
)
from repro.netsim.packet import MSS


def fb(now, acked=MSS, rtt=0.05, rate=50e6, in_flight=10 * MSS,
       app_limited=False):
    return RateSample(now=now, newly_acked=acked, newly_lost=0, rtt=rtt,
                      delivery_rate_bps=rate, in_flight=in_flight,
                      is_app_limited=app_limited)


def drive_to_probe_bw(cc, t0=0.0):
    t = t0
    for _ in range(60):
        t += 0.05
        cc.on_feedback(fb(t, in_flight=2 * MSS))
    assert cc.state == PROBE_BW
    return t


class TestGainCycle:
    def test_cycle_advances_once_per_min_rtt(self):
        cc = BBR(initial_rtt_s=0.05)
        t = drive_to_probe_bw(cc)
        seen_gains = set()
        for _ in range(20):
            t += 0.05
            cc.on_feedback(fb(t))
            seen_gains.add(cc._pacing_gain)
        assert 1.25 in seen_gains
        assert 0.75 in seen_gains
        assert 1.0 in seen_gains

    def test_gain_sequence_matches_spec(self):
        assert _PROBE_BW_GAINS[0] == 1.25
        assert _PROBE_BW_GAINS[1] == 0.75
        assert all(g == 1.0 for g in _PROBE_BW_GAINS[2:])

    def test_mean_cycle_gain_is_unity(self):
        assert sum(_PROBE_BW_GAINS) / len(_PROBE_BW_GAINS) == pytest.approx(1.0)


class TestDrain:
    def test_drain_waits_for_inflight_to_fall(self):
        # bdp at 50 Mbps x 50 ms is ~208 packets; keep in-flight well
        # above it so the startup queue actually needs draining.
        cc = BBR(initial_rtt_s=0.05)
        t = 0.0
        for _ in range(40):
            t += 0.05
            cc.on_feedback(fb(t, in_flight=600 * MSS))
        assert cc.state == DRAIN
        t += 0.05
        cc.on_feedback(fb(t, in_flight=600 * MSS))
        assert cc.state == DRAIN
        # Inflight collapses below bdp: moves on.
        t += 0.05
        cc.on_feedback(fb(t, in_flight=MSS))
        assert cc.state == PROBE_BW

    def test_drain_pacing_gain_below_one(self):
        cc = BBR(initial_rtt_s=0.05)
        t = 0.0
        for _ in range(40):
            t += 0.05
            cc.on_feedback(fb(t, in_flight=600 * MSS))
        assert cc.state == DRAIN
        assert cc._pacing_gain < 1.0

    def test_no_drain_when_pipe_never_overfilled(self):
        """In-flight below bdp at startup exit: drain is a no-op and
        the controller lands straight in PROBE_BW."""
        cc = BBR(initial_rtt_s=0.05)
        t = 0.0
        for _ in range(40):
            t += 0.05
            cc.on_feedback(fb(t, in_flight=100 * MSS))
        assert cc.state == PROBE_BW


class TestProbeRttRecovery:
    def test_exits_probe_rtt_back_to_probe_bw(self):
        cc = BBR(initial_rtt_s=0.05, min_rtt_window=0.5)
        t = drive_to_probe_bw(cc)
        # Starve min_rtt updates until PROBE_RTT triggers.
        for _ in range(40):
            t += 0.05
            cc.on_feedback(fb(t, rtt=0.2, in_flight=2 * MSS))
            if cc.state == PROBE_RTT:
                break
        assert cc.state == PROBE_RTT
        # Ride through the probe duration.
        for _ in range(20):
            t += 0.05
            cc.on_feedback(fb(t, rtt=0.2, in_flight=2 * MSS))
            if cc.state == PROBE_BW:
                break
        assert cc.state == PROBE_BW

    def test_min_rtt_refreshed_by_probe(self):
        cc = BBR(initial_rtt_s=0.05, min_rtt_window=0.5)
        t = drive_to_probe_bw(cc)
        for _ in range(60):
            t += 0.05
            cc.on_feedback(fb(t, rtt=0.08, in_flight=2 * MSS))
        # After window expiry of the old 0.05 min, the estimate follows
        # the live 0.08 samples.
        assert cc.min_rtt() == pytest.approx(0.08, rel=0.05)


class TestBandwidthWindow:
    def test_stale_peak_expires(self):
        cc = BBR(initial_rtt_s=0.05, bw_window_rtts=2.0)
        cc.on_feedback(fb(0.05, rate=100e6))
        # Feed lower rates past the 2-RTT window.
        t = 0.05
        for _ in range(20):
            t += 0.05
            cc.on_feedback(fb(t, rate=30e6))
        assert cc.bw_estimate() == pytest.approx(30e6)
