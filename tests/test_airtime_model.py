"""Tests for the analytic airtime model against the DCF simulator."""

import pytest

from repro.analysis.airtime import (
    ack_airtime_share,
    ideal_goodput_bps,
    tack_equivalent_l,
    txop_airtime_s,
)
from repro.wlan.phy import get_profile


class TestTxopAirtime:
    def test_components_add_up(self):
        phy = get_profile("802.11g")
        t = txop_airtime_s(phy, 1518)
        expected = (phy.difs_s + phy.mean_backoff_s()
                    + phy.exchange_airtime(phy.mpdu_bytes(1518)))
        assert t == pytest.approx(expected)

    def test_aggregation_amortizes(self):
        phy = get_profile("802.11n")
        one = txop_airtime_s(phy, 1518, 1)
        twelve = txop_airtime_s(phy, 1518, 12)
        assert twelve < 12 * one


class TestIdealGoodput:
    def test_matches_phy_saturation_at_infinite_l(self):
        for name in ("802.11b", "802.11g", "802.11n", "802.11ac"):
            phy = get_profile(name)
            no_acks = ideal_goodput_bps(phy, ack_every_l=1e9)
            assert no_acks == pytest.approx(phy.saturation_goodput_bps(), rel=0.001)

    def test_monotone_in_l(self):
        phy = get_profile("802.11n")
        series = [ideal_goodput_bps(phy, L) for L in (1, 2, 4, 8, 16)]
        assert series == sorted(series)

    def test_acks_cost_more_on_faster_phy(self):
        """The paper's scaling argument: at the same ACK-per-packet
        ratio (below saturation), the relative ACK cost grows with the
        PHY rate — faster links deliver more packets per unit airtime,
        so the same L buys proportionally more acquisitions."""
        slow = get_profile("802.11b")
        fast = get_profile("802.11ac")
        L = 64  # unsaturated for both (n_agg/L < 1)
        slow_ratio = ideal_goodput_bps(slow, L) / ideal_goodput_bps(slow, 1e9)
        fast_ratio = ideal_goodput_bps(fast, L) / ideal_goodput_bps(fast, 1e9)
        assert fast_ratio < slow_ratio

    def test_matches_simulated_fig9b(self):
        """Analytic ideal goodput tracks the UDP-tool simulation
        (802.11n, ACK station unaggregated) within a few percent."""
        from repro.app.udp_blast import run_contention_trial
        from repro.netsim.engine import Simulator
        from repro.netsim.paths import wlan_path

        phy = get_profile("802.11n")

        class _Hop:
            def __init__(self, tx, rx):
                self.tx, self.rx = tx, rx

            def send(self, p):
                return self.tx.send(p)

            def connect(self, sink):
                self.rx.connect(sink)

        for L in (2, 8):
            sim = Simulator(seed=3)
            handle = wlan_path(sim, "802.11n")
            ap, sta = handle.stations
            sta.aggregate = False  # model: one acquisition per ACK
            result = run_contention_trial(
                sim, _Hop(ap, sta), _Hop(sta, ap), count_l=L,
                rate_bps=phy.saturation_goodput_bps(), duration_s=1.0,
                medium=handle.medium,
            )
            analytic = ideal_goodput_bps(phy, L)
            assert result.data_throughput_bps == pytest.approx(analytic, rel=0.08)

    def test_validation(self):
        phy = get_profile("802.11n")
        with pytest.raises(ValueError):
            ideal_goodput_bps(phy, 0)
        with pytest.raises(ValueError):
            ideal_goodput_bps(phy, 2, ack_aggregation=0)


class TestAckShare:
    def test_share_decreases_with_l(self):
        phy = get_profile("802.11n")
        shares = [ack_airtime_share(phy, L) for L in (1, 2, 8, 64)]
        assert shares == sorted(shares, reverse=True)
        assert 0 < shares[-1] < shares[0] < 1

    def test_ack_aggregation_reduces_share(self):
        # Compare below the saturation cap (L=64), where aggregation
        # genuinely removes acquisitions instead of just lengthening a
        # capped ACK TXOP.
        phy = get_profile("802.11ac")
        assert (ack_airtime_share(phy, 64, ack_aggregation=8)
                < ack_airtime_share(phy, 64))


class TestTackEquivalentL:
    def test_periodic_regime_math(self):
        # 210 Mbps, RTT 80 ms, beta 4 -> one TACK per 350 packets.
        L = tack_equivalent_l(210e6, 0.08)
        assert L == pytest.approx(210e6 / 12000 * 0.08 / 4, rel=0.01)

    def test_floor_at_one(self):
        assert tack_equivalent_l(1e3, 0.001) == 1.0
