"""Unit tests for the feedback validation guard (DESIGN.md section 17).

Each rule gets a direct sender-level test: a hostile frame is
injected, the offending field must be clamped/dropped (never crash,
never act on the lie), the violation counted under its stable rule
name, and the tolerate budget must eventually escalate into a
structured ``misbehaving_peer`` abort.
"""

import math

import pytest

from repro.cc import BBR, NewReno
from repro.netsim.packet import MSS, Packet, PacketType
from repro.transport.errors import FeedbackFormatError
from repro.transport.feedback import (
    AckFeedback,
    check_wire_form,
    clone_feedback,
    make_feedback_packet,
)
from repro.transport.guard import AWND_MAX, GuardConfig, resolve_strict
from repro.transport.sender import TransportSender


class StubPort:
    def __init__(self):
        self.sent = []
        self.accept = True

    def send(self, packet):
        self.sent.append(packet)
        return self.accept

    def connect(self, sink):
        pass


def established_sender(sim, cc=None, **kwargs):
    sender = TransportSender(sim, cc or NewReno(), **kwargs)
    port = StubPort()
    sender.connect(port)
    sender.start()
    syn_ack = Packet(PacketType.SYN_ACK, size=64)
    syn_ack.meta["syn_sent_at"] = 0.0
    sim.call_in(0.01, lambda: sender.on_packet(syn_ack))
    sim.run(until=0.02)
    port.sent.clear()
    return sender, port


def tack_sender(sim, **kwargs):
    return established_sender(sim, cc=BBR(initial_rtt_s=0.01),
                              receiver_driven=True, use_receiver_rate=True,
                              **kwargs)


def feed(sender, fb, kind=PacketType.ACK):
    sender.on_packet(make_feedback_packet(kind, fb))


def fb_for(cum_ack, **fields):
    return AckFeedback(cum_ack=cum_ack, awnd=fields.pop("awnd", 1 << 30),
                       **fields)


class TestWireFormHardening:
    """Satellite (a): malformed frames raise a structured
    FeedbackFormatError naming the offending field — never a bare
    TypeError/IndexError from deep inside the sender."""

    def test_accepts_legitimate_frame(self):
        check_wire_form(fb_for(MSS, sack_blocks=[(2 * MSS, 3 * MSS)],
                               tack_delay=0.001, fb_seq=3))

    @pytest.mark.parametrize("field,value", [
        ("cum_ack", None),
        ("cum_ack", 1.5),
        ("cum_ack", True),          # bool is not an int here
        ("awnd", "big"),
        ("sack_blocks", [(1,)]),
        ("sack_blocks", [("a", "b")]),
        ("unacked_blocks", 7),
        ("pull_pkt_range", (1, 2, 3)),
        ("tack_delay", float("nan")),
        ("echo_departure_ts", float("inf")),
        ("delivery_rate_bps", "fast"),
        ("rx_loss_rate", [0.5]),
        ("largest_pkt_seq", 3.7),
        ("packet_delays", [(None, 0.1)]),
        ("fb_seq", "zero"),
        ("reason", 42),
    ])
    def test_rejects_malformed_field(self, field, value):
        fb = fb_for(MSS)
        setattr(fb, field, value)
        with pytest.raises(FeedbackFormatError) as err:
            check_wire_form(fb)
        assert err.value.field == field

    def test_rejects_non_feedback_object(self):
        with pytest.raises(FeedbackFormatError):
            check_wire_form({"cum_ack": 0})

    def test_sender_drops_malformed_frame_without_crash(self, sim):
        sender, _ = established_sender(sim)
        sender.set_total(4 * MSS)
        sim.run(until=0.05)
        bad = fb_for(MSS)
        bad.sack_blocks = [(-5,)]
        feed(sender, bad)
        assert sender.cum_acked == 0
        assert sender.stats.feedback_rejected == 1
        assert sender.guard.counts["format"] == 1

    def test_guard_disabled_still_drops_malformed(self, sim):
        sender, _ = established_sender(
            sim, guard=GuardConfig(enabled=False))
        assert sender.guard is None
        sender.set_total(4 * MSS)
        sim.run(until=0.05)
        bad = fb_for(MSS)
        bad.cum_ack = "everything"
        feed(sender, bad)
        assert sender.cum_acked == 0
        assert sender.stats.feedback_rejected == 1


class TestCumAckRule:
    def test_optimistic_ack_makes_no_progress(self, sim):
        sender, _ = established_sender(sim)
        sender.set_total(4 * MSS)
        sim.run(until=0.05)
        feed(sender, fb_for(sender.next_seq + 10 * MSS))
        assert sender.cum_acked == 0          # reset, not clamped forward
        assert not sender.completed_at
        assert sender.guard.counts["cum_ack"] == 1

    def test_negative_cum_ack_rejected(self, sim):
        sender, _ = established_sender(sim)
        sender.set_total(4 * MSS)
        sim.run(until=0.05)
        feed(sender, fb_for(-1))
        assert sender.cum_acked == 0
        assert sender.guard.counts["cum_ack"] == 1

    def test_legit_progress_still_flows(self, sim):
        sender, _ = established_sender(sim)
        sender.set_total(4 * MSS)
        sim.run(until=0.05)
        feed(sender, fb_for(2 * MSS))
        assert sender.cum_acked == 2 * MSS
        assert sender.guard.total == 0


class TestAwndRule:
    def test_absurd_awnd_keeps_previous(self, sim):
        sender, _ = established_sender(sim)
        sender.set_total(4 * MSS)
        sim.run(until=0.05)
        feed(sender, fb_for(MSS, awnd=1 << 20))
        assert sender.awnd == 1 << 20
        feed(sender, fb_for(MSS, awnd=AWND_MAX + 1))
        assert sender.awnd == 1 << 20
        assert sender.guard.counts["awnd"] == 1

    def test_negative_awnd_not_a_zero_window(self, sim):
        """A negative awnd must not trigger persist-mode behavior."""
        sender, _ = established_sender(sim)
        sender.set_total(4 * MSS)
        sim.run(until=0.05)
        feed(sender, fb_for(MSS, awnd=-1))
        assert sender.awnd >= 0
        assert sender.guard.counts["awnd"] == 1


class TestFbSeqRules:
    def test_replayed_old_fb_seq_dropped_from_rho(self, sim):
        sender, _ = established_sender(sim)
        sender.set_total(8 * MSS)
        sim.run(until=0.05)
        feed(sender, fb_for(MSS, fb_seq=500))
        feed(sender, fb_for(MSS, fb_seq=100))   # far below the window
        assert sender.guard.counts["fb_seq_replay"] == 1

    def test_reordered_fb_seq_tolerated(self, sim):
        sender, _ = established_sender(sim)
        sender.set_total(8 * MSS)
        sim.run(until=0.05)
        feed(sender, fb_for(MSS, fb_seq=10))
        feed(sender, fb_for(MSS, fb_seq=8))     # plain reordering
        assert sender.guard.total == 0

    def test_huge_skip_does_not_poison_high_water(self, sim):
        sender, _ = established_sender(sim)
        sender.set_total(8 * MSS)
        sim.run(until=0.05)
        feed(sender, fb_for(MSS, fb_seq=10))
        feed(sender, fb_for(MSS, fb_seq=10 + 100_000))
        assert sender.guard.counts["fb_seq_skip"] == 1
        # The bogus skip must not turn later legitimate fb_seq values
        # into replays.
        feed(sender, fb_for(MSS, fb_seq=11))
        assert "fb_seq_replay" not in sender.guard.counts

    def test_frozen_fb_seq_run_is_replay(self, sim):
        sender, _ = established_sender(sim)
        sender.set_total(8 * MSS)
        sim.run(until=0.05)
        for _ in range(9):
            feed(sender, fb_for(MSS, fb_seq=7))
        assert sender.guard.counts.get("fb_seq_replay", 0) >= 1

    def test_route_flip_lateness_tolerated(self, sim):
        """Under per-packet acking a +delta route flip delays honest
        frames by (delta x fb rate) positions — the replay window must
        scale with the observed feedback rate."""
        sender, _ = established_sender(sim)
        sender.set_total(8 * MSS)
        sim.run(until=0.05)
        for i in range(300):                    # ~1000 frames/s
            sim.run(until=sim.now() + 0.001)
            feed(sender, fb_for(MSS, fb_seq=1000 + i))
        # 500 frames late: past the 256-frame floor, inside the
        # rate-scaled window (~2000 at this feedback rate).
        feed(sender, fb_for(MSS, fb_seq=1299 - 500))
        assert "fb_seq_replay" not in sender.guard.counts

    def test_network_dup_tolerated(self, sim):
        sender, _ = established_sender(sim)
        sender.set_total(8 * MSS)
        sim.run(until=0.05)
        feed(sender, fb_for(MSS, fb_seq=7))
        feed(sender, fb_for(MSS, fb_seq=7))     # one duplicate is normal
        assert sender.guard.total == 0


class TestRangeRules:
    def test_sack_beyond_snd_nxt_dropped(self, sim):
        sender, _ = established_sender(sim)
        sender.set_total(4 * MSS)
        sim.run(until=0.05)
        nxt = sender.next_seq
        feed(sender, fb_for(MSS, sack_blocks=[(nxt + MSS, nxt + 2 * MSS)]))
        assert sender.guard.counts["sack_range"] == 1
        # the bogus block must not have marked anything sacked
        assert all(not rec.sacked for rec in sender.records.values())

    def test_good_and_bad_blocks_split(self, sim):
        sender, _ = established_sender(sim)
        sender.set_total(4 * MSS)
        sim.run(until=0.05)
        nxt = sender.next_seq
        feed(sender, fb_for(0, sack_blocks=[(MSS, 2 * MSS),
                                            (nxt + MSS, nxt + 2 * MSS)]))
        assert sender.guard.counts["sack_range"] == 1
        rec = sender.records.get(MSS)
        assert rec is not None and rec.sacked   # in-range block survived

    def test_unacked_range_violation_counted(self, sim):
        sender, port = tack_sender(sim)
        sender.set_total(4 * MSS)
        sim.run(until=0.05)
        nxt = sender.next_seq
        feed(sender, fb_for(MSS, unacked_blocks=[(nxt, nxt + MSS)]),
             kind=PacketType.TACK)
        assert sender.guard.counts["unacked_range"] == 1


class TestPullRules:
    def test_out_of_range_pull_ignored(self, sim):
        sender, port = tack_sender(sim)
        sender.set_total(6 * MSS)
        sim.run(until=0.05)
        port.sent.clear()
        top = sender.next_pkt_seq - 1
        feed(sender, fb_for(0, pull_pkt_range=(top, top + 1000),
                            largest_pkt_seq=top),
             kind=PacketType.IACK)
        sim.run(until=0.2)
        assert sender.guard.counts["pull_range"] == 1
        retx = [p for p in port.sent
                if p.kind is PacketType.DATA and p.payload_len]
        assert sender.stats.retransmissions == 0 or not retx

    def test_bogus_largest_pkt_seq_stripped(self, sim):
        sender, _ = tack_sender(sim)
        sender.set_total(6 * MSS)
        sim.run(until=0.05)
        feed(sender, fb_for(0, largest_pkt_seq=sender.next_pkt_seq + 99),
             kind=PacketType.TACK)
        assert sender.guard.counts["pull_range"] == 1

    def test_repulling_same_range_is_free(self, sim):
        """A legitimate receiver re-pulls the same loss range every
        TACK until it fills; only newly named space is charged."""
        sender, _ = tack_sender(sim)
        sender.set_total(6 * MSS)
        sim.run(until=0.05)
        top = sender.next_pkt_seq - 1
        assert top >= 2
        for _ in range(400):
            feed(sender, fb_for(0, pull_pkt_range=(1, top)),
                 kind=PacketType.IACK)
        assert "pull_flood" not in sender.guard.counts

    def test_pull_budget_floods_counted(self, sim):
        sender, _ = tack_sender(sim)
        sender.set_total(6 * MSS)
        sim.run(until=0.05)
        # Pretend a long history of sent PKT.SEQs so a whole-horizon
        # pull is in range but far beyond the unacked horizon: hull
        # growth blows the budget floor in one frame.
        sender.next_pkt_seq = 100_000
        feed(sender, fb_for(0, pull_pkt_range=(0, 99_999)),
             kind=PacketType.IACK)
        assert sender.guard.counts.get("pull_flood", 0) >= 1


class TestTimingRules:
    def test_unstamped_echo_stripped(self, sim):
        sender, _ = tack_sender(sim)
        sender.set_total(4 * MSS)
        sim.run(until=0.05)
        before = sender.current_rtt_min()
        feed(sender, fb_for(MSS, echo_departure_ts=sim.now() - 1e-6,
                            tack_delay=0.0),
             kind=PacketType.TACK)
        assert sender.guard.counts["echo_ts"] == 1
        assert sender.current_rtt_min() == before

    def test_real_stamp_with_inflated_delay_stripped(self, sim):
        sender, port = tack_sender(sim)
        sender.set_total(4 * MSS)
        sim.run(until=0.05)
        ts = next(p.sent_at for p in port.sent
                  if p.kind is PacketType.DATA)
        # Claimed hold delay exceeds the whole time since departure:
        # accepting it would fake a negative path RTT.
        feed(sender, fb_for(MSS, echo_departure_ts=ts,
                            tack_delay=(sim.now() - ts) + 5.0),
             kind=PacketType.TACK)
        assert sender.guard.counts["tack_delay"] == 1

    def test_honest_echo_accepted(self, sim):
        sender, port = tack_sender(sim)
        sender.set_total(4 * MSS)
        sim.run(until=0.05)
        ts = next(p.sent_at for p in port.sent
                  if p.kind is PacketType.DATA)
        feed(sender, fb_for(MSS, echo_departure_ts=ts,
                            tack_delay=(sim.now() - ts) / 2),
             kind=PacketType.TACK)
        assert sender.guard.total == 0

    def test_poisoned_packet_delays_filtered(self, sim):
        sender, port = tack_sender(sim)
        sender.set_total(4 * MSS)
        sim.run(until=0.05)
        feed(sender, fb_for(MSS, packet_delays=[(sim.now() - 1e-5, 0.0)]),
             kind=PacketType.TACK)
        assert sender.guard.counts["echo_ts"] == 1


class TestRateRules:
    def test_implausible_delivery_rate_dropped(self, sim):
        sender, _ = tack_sender(sim)
        sender.set_total(4 * MSS)
        sim.run(until=0.05)
        feed(sender, fb_for(MSS, delivery_rate_bps=1e15),
             kind=PacketType.TACK)
        assert sender.guard.counts["rate"] == 1

    def test_negative_rate_dropped(self, sim):
        sender, _ = tack_sender(sim)
        sender.set_total(4 * MSS)
        sim.run(until=0.05)
        feed(sender, fb_for(MSS, delivery_rate_bps=-5.0),
             kind=PacketType.TACK)
        assert sender.guard.counts["rate"] == 1

    def test_rx_loss_rate_clamped(self, sim):
        sender, _ = tack_sender(sim)
        sender.set_total(4 * MSS)
        sim.run(until=0.05)
        feed(sender, fb_for(MSS, rx_loss_rate=7.5), kind=PacketType.TACK)
        assert sender.guard.counts["rate"] == 1
        assert 0.0 <= sender.ack_loss.loss_rate <= 1.0


class TestEscalation:
    def test_per_rule_budget_aborts(self, sim):
        sender, _ = established_sender(
            sim, guard=GuardConfig(escalate_after=3, escalate_total=100,
                                   escalate_consecutive=100))
        sender.set_total(8 * MSS)
        sim.run(until=0.05)
        for _ in range(3):
            feed(sender, fb_for(-1))            # cum_ack violation
            if sender.aborted is None:
                feed(sender, fb_for(0))         # clean frame: no run builds
        assert sender.aborted is not None
        assert sender.aborted.reason == "misbehaving_peer"
        assert sender.guard.escalation_rule == "cum_ack"

    def test_consecutive_run_aborts_before_count_budget(self, sim):
        """A rule firing on every frame escalates by run length even
        when the absolute budget is far away (RTO-cadence starvation)."""
        sender, _ = established_sender(
            sim, guard=GuardConfig(escalate_after=10_000,
                                   escalate_total=100_000,
                                   escalate_consecutive=4))
        sender.set_total(8 * MSS)
        sim.run(until=0.05)
        for _ in range(4):
            feed(sender, fb_for(-1))
        assert sender.aborted is not None
        assert sender.aborted.reason == "misbehaving_peer"

    def test_interleaved_violations_do_not_build_a_run(self, sim):
        sender, _ = established_sender(
            sim, guard=GuardConfig(escalate_consecutive=3))
        sender.set_total(8 * MSS)
        sim.run(until=0.05)
        for _ in range(5):
            feed(sender, fb_for(-1))            # cum_ack violation
            feed(sender, fb_for(0))             # clean frame resets run
        assert sender.aborted is None

    def test_total_budget_aborts_across_rules(self, sim):
        sender, _ = established_sender(
            sim, guard=GuardConfig(escalate_after=100,
                                   escalate_total=4,
                                   escalate_consecutive=100))
        sender.set_total(8 * MSS)
        sim.run(until=0.05)
        feed(sender, fb_for(-1))
        feed(sender, fb_for(0, awnd=-2))
        feed(sender, fb_for(-1))
        feed(sender, fb_for(0, awnd=-2))
        assert sender.aborted is not None
        assert sender.aborted.reason == "misbehaving_peer"
        assert sender.aborted.detail and "rule" in sender.aborted.detail

    def test_strict_mode_aborts_on_first_violation(self, sim):
        sender, _ = established_sender(sim, guard=GuardConfig(strict=True))
        sender.set_total(8 * MSS)
        sim.run(until=0.05)
        feed(sender, fb_for(-1))
        assert sender.aborted is not None
        assert sender.aborted.reason == "misbehaving_peer"

    def test_strict_env_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_GUARD_STRICT", raising=False)
        assert resolve_strict(None) is False
        assert resolve_strict(True) is True
        monkeypatch.setenv("REPRO_GUARD_STRICT", "1")
        assert resolve_strict(None) is True
        assert resolve_strict(False) is False
        monkeypatch.setenv("REPRO_GUARD_STRICT", "0")
        assert resolve_strict(None) is False


class TestTelemetryRateLimit:
    """Satellite (b): per-rule violation traces are bounded; the
    summary event carries the authoritative totals."""

    def test_trace_limit_bounds_events(self, sim):
        from repro.telemetry import TraceCollector

        collector = sim.attach_telemetry(TraceCollector())
        sender, _ = established_sender(
            sim, guard=GuardConfig(trace_limit=3, escalate_after=10_000,
                                   escalate_total=100_000,
                                   escalate_consecutive=10_000))
        sender.set_total(8 * MSS)
        sim.run(until=0.05)
        for _ in range(20):
            feed(sender, fb_for(-1))
        events = [e for e in collector.events()
                  if e.category == "guard" and e.name == "violation"]
        assert len(events) == 3
        assert sender.guard.counts["cum_ack"] == 20

    def test_summary_event_at_close(self, sim):
        from repro.telemetry import TraceCollector

        collector = sim.attach_telemetry(TraceCollector())
        sender, _ = established_sender(
            sim, guard=GuardConfig(escalate_after=10_000,
                                   escalate_total=100_000,
                                   escalate_consecutive=10_000))
        sender.set_total(8 * MSS)
        sim.run(until=0.05)
        for _ in range(7):
            feed(sender, fb_for(-1))
        sender.close()
        summaries = [e for e in collector.events()
                     if e.category == "guard" and e.name == "summary"]
        assert len(summaries) == 1
        assert summaries[0].fields["cum_ack"] == 7
        assert summaries[0].fields["total"] == 7

    def test_clean_run_emits_no_guard_events(self, sim):
        from repro.telemetry import TraceCollector

        collector = sim.attach_telemetry(TraceCollector())
        sender, _ = established_sender(sim)
        sender.set_total(2 * MSS)
        sim.run(until=0.05)
        feed(sender, fb_for(2 * MSS))
        sender.close()
        assert not [e for e in collector.events() if e.category == "guard"]


class TestWatchdog:
    def cfg(self, **kw):
        base = dict(watchdog_floor_s=0.2, watchdog_cap_s=0.2,
                    watchdog_probes=2)
        base.update(kw)
        return GuardConfig(**base)

    def test_withholding_aborts_misbehaving_peer(self, sim):
        sender, port = established_sender(sim, guard=self.cfg())
        sender.set_total(8 * MSS)
        sim.run(until=0.05)
        feed(sender, fb_for(MSS))     # one feedback, then total silence
        sim.run(until=10.0)
        assert sender.aborted is not None
        assert sender.aborted.reason == "misbehaving_peer"
        assert sender.stats.watchdog_probes >= 3
        assert sender.guard.counts["withheld"] >= 3

    def test_probes_do_not_drain_escalation_budget(self, sim):
        """Watchdog probes count under 'withheld' but never toward the
        violation escalation totals (legit blackouts probe too)."""
        sender, port = established_sender(
            sim, guard=self.cfg(watchdog_probes=1000))
        sender.set_total(8 * MSS)
        sim.run(until=0.05)
        feed(sender, fb_for(MSS))
        sim.run(until=3.0)
        assert sender.stats.watchdog_probes >= 2
        assert sender.guard.total == 0
        assert not sender.guard.escalated

    def test_dead_path_never_probes_twice(self, sim):
        """When the link refuses sends (blackout), the probe gate
        (accepted sends since last probe) blocks repeat probes, so the
        honest rto_exhausted wins — not misbehaving_peer."""
        sender, port = established_sender(sim, guard=self.cfg())
        sender.set_total(8 * MSS)
        sim.run(until=0.05)
        feed(sender, fb_for(MSS))
        port.accept = False           # path goes dark at ingress
        sim.run(until=60.0)
        assert sender.stats.watchdog_probes <= 1
        if sender.aborted is not None:
            assert sender.aborted.reason != "misbehaving_peer"

    def test_feedback_resets_probe_count(self, sim):
        sender, port = established_sender(
            sim, guard=self.cfg(watchdog_probes=2))
        sender.set_total(8 * MSS)
        sim.run(until=0.05)
        feed(sender, fb_for(MSS))
        sim.run(until=0.5)            # a probe or two fire
        feed(sender, fb_for(2 * MSS))
        assert sender._wd_probes == 0
        assert sender.aborted is None

    def test_watchdog_disabled(self, sim):
        sender, _ = established_sender(
            sim, guard=self.cfg(watchdog=False))
        sender.set_total(8 * MSS)
        sim.run(until=0.05)
        feed(sender, fb_for(MSS))
        sim.run(until=10.0)
        assert sender.stats.watchdog_probes == 0


class TestCloneFeedback:
    def test_clone_is_deep_enough(self):
        fb = fb_for(MSS, sack_blocks=[(1, 2)], packet_delays=[(0.1, 0.2)])
        cp = clone_feedback(fb)
        cp.sack_blocks.append((3, 4))
        cp.cum_ack = 0
        assert fb.sack_blocks == [(1, 2)]
        assert fb.cum_ack == MSS

    def test_guard_never_mutates_receiver_frame(self, sim):
        sender, _ = established_sender(sim)
        sender.set_total(4 * MSS)
        sim.run(until=0.05)
        fb = fb_for(sender.next_seq + 10 * MSS)
        feed(sender, fb)
        # the receiver's object still carries the hostile value; the
        # sender sanitized a clone
        assert fb.cum_ack == sender.next_seq + 10 * MSS
