"""Tests of the experiment harness itself (Table plus fast runs).

The heavy experiments are exercised by ``benchmarks/``; here the Table
machinery and the cheapest experiment paths are verified so harness
regressions show up in the fast suite.
"""

import os

import pytest

from repro.experiments import fig02_bitrates, fig17_freq_model
from repro.experiments.fig08_ack_frequency import run_analytic
from repro.experiments.table import Table


class TestTable:
    def test_add_and_format(self):
        t = Table("Demo", ["a", "b"])
        t.add_row(a=1, b=2.5)
        text = t.format_text()
        assert "Demo" in text
        assert "2.5" in text

    def test_unknown_column_rejected(self):
        t = Table("Demo", ["a"])
        with pytest.raises(KeyError):
            t.add_row(a=1, bogus=2)

    def test_column_access(self):
        t = Table("Demo", ["a"])
        t.add_row(a=1)
        t.add_row(a=2)
        assert t.column("a") == [1, 2]
        with pytest.raises(KeyError):
            t.column("zzz")

    def test_missing_cell_rendered_as_dash(self):
        t = Table("Demo", ["a", "b"])
        t.add_row(a=1)
        assert "-" in t.format_text().splitlines()[-1]

    def test_save(self, tmp_path):
        t = Table("Demo", ["a"], note="a note")
        t.add_row(a=1)
        path = os.path.join(tmp_path, "sub", "demo.txt")
        t.save(path)
        with open(path) as f:
            content = f.read()
        assert "a note" in content

    def test_small_floats_scientific(self):
        t = Table("Demo", ["x"])
        t.add_row(x=0.00001)
        assert "e-05" in t.format_text()


class TestFastExperiments:
    def test_fig02_runs(self):
        table = fig02_bitrates.run(duration_s=1.0)
        assert len(table) == 8

    def test_fig08a_runs(self):
        table = run_analytic()
        assert len(table) == 4
        # reduction positive everywhere at 80+ ms
        assert all(v > 0 for v in table.column("delta_f@80ms"))

    def test_fig17_runs(self):
        a = fig17_freq_model.run_vs_bandwidth()
        b = fig17_freq_model.run_vs_rtt()
        assert len(a) > 5 and len(b) > 5

    def test_fig09_doctor_compare_attributes_impairment(self):
        from repro.experiments.fig09_goodput_trend import (
            doctor_compare_table, run_doctor_compare)
        result = run_doctor_compare(scheme="tcp-tack", seed=7)
        explanation = result["explanation"]
        # the impaired run must lose goodput, and the explanation must
        # attribute the loss to at least one send-limit state delta
        assert explanation["goodput_delta_frac"] < 0
        assert explanation["attribution"]
        top = explanation["attribution"][0]
        assert top["state"] != "closing" and top["delta_s"] > 0
        assert "impaired" in explanation["headline"]
        table = doctor_compare_table(result)
        assert len(table) == len(explanation["attribution"])
        assert explanation["headline"] in table.format_text()
