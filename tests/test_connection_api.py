"""API-surface tests: Connection, configs, and convenience wrappers."""

import pytest

from repro.ack import DelayedAck
from repro.cc import NewReno
from repro.netsim.packet import MSS
from repro.netsim.paths import wired_path
from repro.transport.connection import Connection, ConnectionConfig


class TestConnectionConfig:
    def test_defaults(self):
        cfg = ConnectionConfig()
        assert cfg.mss == MSS
        assert not cfg.receiver_driven
        assert cfg.auto_drain

    def test_wire_after_construction(self, sim):
        path = wired_path(sim, 10e6, 0.02)
        conn = Connection(sim, NewReno(), DelayedAck())
        conn.wire(path.forward, path.reverse)
        conn.start_transfer(10 * MSS)
        sim.run(until=2.0)
        assert conn.completed

    def test_wire_at_construction(self, sim):
        path = wired_path(sim, 10e6, 0.02)
        conn = Connection(sim, NewReno(), DelayedAck(),
                          forward_port=path.forward,
                          reverse_port=path.reverse)
        conn.start_transfer(10 * MSS)
        sim.run(until=2.0)
        assert conn.completed

    def test_goodput_zero_before_start(self, sim):
        conn = Connection(sim, NewReno(), DelayedAck())
        assert conn.goodput_bps() == 0.0

    def test_close_cancels_timers(self, sim):
        path = wired_path(sim, 10e6, 0.02)
        conn = Connection(sim, NewReno(), DelayedAck(),
                          forward_port=path.forward,
                          reverse_port=path.reverse)
        conn.start_bulk()
        sim.run(until=0.5)
        conn.close()
        before = sim.now()
        sim.run(until=before + 5.0)
        # After close the sender must not keep transmitting.
        sent_at_close = conn.sender.stats.data_packets_sent
        sim.run(until=before + 6.0)
        assert conn.sender.stats.data_packets_sent == sent_at_close


class TestWriteApi:
    def test_incremental_writes(self, sim):
        path = wired_path(sim, 10e6, 0.02)
        conn = Connection(sim, NewReno(), DelayedAck(),
                          forward_port=path.forward,
                          reverse_port=path.reverse)
        conn.sender.start()
        for _ in range(5):
            conn.sender.write(2 * MSS)
        sim.run(until=2.0)
        assert conn.receiver.stats.bytes_delivered == 10 * MSS

    def test_negative_write_rejected(self, sim):
        conn = Connection(sim, NewReno(), DelayedAck())
        with pytest.raises(ValueError):
            conn.sender.write(-1)

    def test_writes_after_start_extend_transfer(self, sim):
        path = wired_path(sim, 10e6, 0.02)
        conn = Connection(sim, NewReno(), DelayedAck(),
                          forward_port=path.forward,
                          reverse_port=path.reverse)
        conn.start_transfer(5 * MSS)
        sim.run(until=1.0)
        assert conn.completed
        conn.sender.completed_at = None
        conn.sender.write(5 * MSS)
        sim.run(until=3.0)
        assert conn.receiver.stats.bytes_delivered == 10 * MSS
