"""Tests for the per-packet delay-report alternative (paper S4.3).

The paper rejects carrying per-packet delta-t for overhead reasons;
these tests verify our implementation of that alternative exhibits
exactly the trade-off the paper describes: many more RTT samples at a
much larger ACK wire cost, with entries capped by what a TACK can
carry.
"""

import pytest

from repro.core.owd_timing import ReceiverOwdTracker

from conftest import build_wired_connection


class TestTrackerPerPacketMode:
    def test_collects_all_interval_samples(self):
        t = ReceiverOwdTracker(mode="per-packet")
        for i in range(5):
            t.on_packet(departure_ts=i * 0.01, arrival_ts=i * 0.01 + 0.05)
        entries = t.take_all_samples(now=1.0)
        assert len(entries) == 5
        # delay = now - arrival
        assert entries[0][1] == pytest.approx(1.0 - 0.05)

    def test_drained_per_interval(self):
        t = ReceiverOwdTracker(mode="per-packet")
        t.on_packet(0.0, 0.05)
        assert len(t.take_all_samples(1.0)) == 1
        assert t.take_all_samples(2.0) == []

    def test_entry_cap_enforced(self):
        t = ReceiverOwdTracker(mode="per-packet")
        for i in range(t.MAX_PER_PACKET_ENTRIES + 50):
            t.on_packet(i * 0.001, i * 0.001 + 0.05)
        entries = t.take_all_samples(now=10.0)
        assert len(entries) == t.MAX_PER_PACKET_ENTRIES
        assert t.per_packet_overflow == 50

    def test_other_modes_collect_nothing(self):
        t = ReceiverOwdTracker(mode="advanced")
        t.on_packet(0.0, 0.05)
        assert t.take_all_samples(1.0) == []


class TestEndToEndTradeoff:
    def _run(self, scheme, sim):
        conn, path = build_wired_connection(sim, scheme, rate_bps=20e6,
                                            rtt_s=0.05)
        conn.start_bulk()
        sim.run(until=5.0)
        rev = path.wan.reverse
        return {
            "rtt_samples": conn.sender.stats.rtt_samples,
            "ack_bytes_avg": rev.bytes_delivered / max(rev.packets_delivered, 1),
            "goodput": conn.receiver.stats.bytes_delivered,
            "rtt_min": conn.sender.rtt_min_est.rtt_min(),
        }

    def test_many_more_samples_at_higher_cost(self):
        from repro.netsim.engine import Simulator

        normal = self._run("tcp-tack", Simulator(seed=3))
        perpkt = self._run("tcp-tack-perpacket-timing", Simulator(seed=3))
        # The paper's trade-off: far more RTT samples...
        assert perpkt["rtt_samples"] > 5 * normal["rtt_samples"]
        # ...paid for with much larger ACKs (one 8-byte entry per data
        # packet of the interval)...
        assert perpkt["ack_bytes_avg"] > 2 * normal["ack_bytes_avg"]
        # ...with no goodput benefit.
        assert perpkt["goodput"] < 1.05 * normal["goodput"]

    def test_rtt_min_equivalent_accuracy(self):
        """The advanced min-OWD reference achieves the same RTT_min as
        exhaustive per-packet reporting — the paper's justification for
        the cheap design."""
        from repro.netsim.engine import Simulator

        normal = self._run("tcp-tack", Simulator(seed=3))
        perpkt = self._run("tcp-tack-perpacket-timing", Simulator(seed=3))
        assert normal["rtt_min"] == pytest.approx(perpkt["rtt_min"], rel=0.05)
