"""Tests for the time-binned rate and ASCII chart utilities."""

import pytest

from repro.stats.series import TimeSeries
from repro.stats.timeline import ascii_chart, binned_rate


def cumulative(points):
    ts = TimeSeries()
    for t, v in points:
        ts.add(t, v)
    return ts


class TestBinnedRate:
    def test_constant_rate(self):
        ts = cumulative([(i * 0.1, i * 100.0) for i in range(11)])
        rates = binned_rate(ts, 0.2, end=1.0)
        assert len(rates) == 5
        assert all(r == pytest.approx(1000.0) for r in rates)

    def test_idle_bins_zero(self):
        ts = cumulative([(0.0, 0.0), (0.1, 100.0), (0.9, 100.0),
                         (1.0, 200.0)])
        rates = binned_rate(ts, 0.5, end=1.0)
        assert rates[0] == pytest.approx(200.0)
        assert rates[1] == pytest.approx(200.0)

    def test_empty_series(self):
        assert binned_rate(TimeSeries(), 0.1) == []

    def test_invalid_bin(self):
        with pytest.raises(ValueError):
            binned_rate(cumulative([(0, 0)]), 0.0)

    def test_total_conserved(self):
        ts = cumulative([(0.0, 0.0), (0.25, 40.0), (0.8, 100.0)])
        rates = binned_rate(ts, 0.1, end=0.8)
        assert sum(r * 0.1 for r in rates) == pytest.approx(100.0)


class TestAsciiChart:
    def test_rows_share_scale(self):
        chart = ascii_chart({"lo": [1.0] * 10, "hi": [10.0] * 10}, width=10)
        lo_row, hi_row = chart.splitlines()
        assert "█" in hi_row
        assert "█" not in lo_row

    def test_width_respected(self):
        chart = ascii_chart({"x": list(range(500))}, width=20)
        row = chart.splitlines()[0]
        body = row.split("|")[1]
        assert len(body) == 20

    def test_short_series_not_padded_wrong(self):
        chart = ascii_chart({"x": [1.0, 2.0, 3.0]}, width=50)
        body = chart.splitlines()[0].split("|")[1]
        assert len(body) == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({})

    def test_all_zero_series_renders(self):
        chart = ascii_chart({"flat": [0.0] * 5})
        assert "|" in chart

    def test_peak_label(self):
        chart = ascii_chart({"x": [5.0]}, unit=" Mbps")
        assert "peak 5 Mbps" in chart or "peak 5.0 Mbps" in chart
