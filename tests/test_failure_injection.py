"""Failure-injection tests: blackouts, reordering, pathological ACK
loss, zero-window stalls, and handshake loss."""

import pytest

from repro.netsim.loss import BurstLoss, PatternLoss
from repro.netsim.packet import MSS, PacketType

from conftest import build_wired_connection


class TestHandshakeFailures:
    def test_syn_lost_then_retried(self, sim):
        conn, _ = build_wired_connection(
            sim, "tcp-tack", forward_loss=PatternLoss([0]),
        )
        conn.start_transfer(10 * MSS)
        sim.run(until=10.0)
        assert conn.completed

    def test_syn_ack_lost_then_retried(self, sim):
        conn, _ = build_wired_connection(
            sim, "tcp-bbr", reverse_loss=PatternLoss([0]),
        )
        conn.start_transfer(10 * MSS)
        sim.run(until=10.0)
        assert conn.completed


class TestAckPathBlackouts:
    @pytest.mark.parametrize("scheme", ["tcp-tack", "tcp-bbr"])
    def test_one_second_ack_blackout(self, sim, scheme):
        conn, _ = build_wired_connection(
            sim, scheme, rate_bps=10e6, rtt_s=0.04,
            reverse_loss=BurstLoss([(1.0, 1.0)]),
        )
        conn.start_transfer(800 * MSS)
        sim.run(until=30.0)
        assert conn.completed

    def test_tack_blackout_both_directions(self, sim):
        conn, _ = build_wired_connection(
            sim, "tcp-tack", rate_bps=10e6, rtt_s=0.04,
            forward_loss=BurstLoss([(1.0, 0.5)]),
            reverse_loss=BurstLoss([(1.2, 0.5)]),
        )
        conn.start_transfer(500 * MSS)
        sim.run(until=40.0)
        assert conn.completed


class TestZeroWindow:
    def test_slow_reader_stalls_then_resumes(self, sim):
        conn, _ = build_wired_connection(sim, "tcp-tack", rate_bps=50e6,
                                         rtt_s=0.02)
        conn.receiver.auto_drain = False
        conn.receiver.rcv_buffer_bytes = 30 * MSS
        conn.start_transfer(200 * MSS)
        sim.run(until=1.0)
        # The sender must have stalled on the small window...
        assert conn.sender.cum_acked < 200 * MSS
        # ...then a periodic reader drains it and the flow finishes.
        def read_some():
            conn.receiver.read(10 * MSS)
            sim.call_in(0.05, read_some)
        read_some()
        sim.run(until=10.0)
        assert conn.completed
        assert conn.receiver.delivered_ptr == 200 * MSS

    def test_window_update_iack_unblocks_quickly(self, sim):
        """The window-open IACK (paper S4.4 example) must resume the
        sender without waiting for the next periodic TACK."""
        conn, _ = build_wired_connection(sim, "tcp-tack", rate_bps=50e6,
                                         rtt_s=0.02)
        conn.receiver.auto_drain = False
        conn.receiver.rcv_buffer_bytes = 20 * MSS
        conn.start_transfer(100 * MSS)
        sim.run(until=1.0)
        stalled_at = conn.sender.cum_acked
        conn.receiver.read(20 * MSS)  # big release -> window_open IACK
        sim.run(until=1.2)
        assert conn.sender.stats.iacks_received > 0
        assert conn.sender.cum_acked > stalled_at


class TestReordering:
    def test_mild_reordering_with_settling_delay(self, sim):
        """With the IACK reorder allowance, reordering does not cause
        retransmissions (paper S7 'Handling reordering')."""
        from repro.core.params import TackParams
        from repro.netsim.paths import wired_path
        from repro.core import make_connection

        # Every 10th data packet is injected 2 ms late, hopping over
        # the packets sent in between (load-balancer-style mild
        # reordering, always bounded and never lost).
        path = wired_path(sim, 20e6, 0.04)
        conn = make_connection(
            sim, "tcp-tack",
            params=TackParams(iack_reorder_delay_factor=0.25),
            initial_rtt_s=0.04,
        )

        class ReorderPort:
            def __init__(self, inner):
                self.inner = inner
                self.count = 0

            def send(self, pkt):
                if pkt.kind is PacketType.DATA:
                    self.count += 1
                    if self.count % 10 == 0:
                        sim.call_in(0.002, lambda p=pkt: self.inner.send(p))
                        return True
                return self.inner.send(pkt)

            def connect(self, sink):
                self.inner.connect(sink)

        conn.wire(ReorderPort(path.forward), path.reverse)
        conn.start_transfer(200 * MSS)
        sim.run(until=10.0)
        assert conn.completed
        # Reordered (not lost) packets should not be retransmitted:
        # spurious retransmissions surface as duplicate deliveries at
        # the receiver (genuine queue-overflow losses do not).
        assert conn.receiver.stats.duplicate_packets <= 2


class TestExtremeLoss:
    def test_quarter_loss_still_completes(self, sim):
        conn, _ = build_wired_connection(
            sim, "tcp-tack", rate_bps=5e6, rtt_s=0.05, data_loss=0.25,
        )
        conn.start_transfer(50 * MSS)
        sim.run(until=120.0)
        assert conn.completed

    def test_full_forward_blackout_then_recovery(self, sim):
        conn, _ = build_wired_connection(
            sim, "tcp-tack", rate_bps=10e6, rtt_s=0.04,
            forward_loss=BurstLoss([(0.5, 2.0)]),
        )
        conn.start_transfer(100 * MSS)
        sim.run(until=30.0)
        assert conn.completed
