"""Tests for the campaign runner: cache, pool, manifest, campaign."""
# reprolint: disable-file=REP001,REP002  (host-side pool: real timeouts, worker RNG)

from __future__ import annotations

import functools
import json
import os
import time

import pytest

from repro.experiments import fig08_ack_frequency, fig17_freq_model
from repro.runner import (Campaign, ResultCache, Task, code_fingerprint,
                          derive_seed, execute_tasks, read_manifest,
                          run_campaign, task_signature)


# ---------------------------------------------------------------------------
# Module-level task bodies: must be importable so they pickle under any
# multiprocessing start method.  Cross-process side effects go through
# files because each attempt runs in its own worker process.

def add(a, b):
    return a + b


def record_call(path, value=1):
    """Append one line to *path* and return *value*."""
    with open(path, "a") as f:
        f.write("x\n")
    return value


def sleep_forever():
    time.sleep(600)


def hard_crash():
    os._exit(3)  # bypasses exception handling, like a segfault


def aborted_transfer(path):
    """Raise a structured transport abort, recording each attempt."""
    from repro.transport.errors import AbortInfo, ConnectionAborted
    with open(path, "a") as f:
        f.write("attempt\n")
    raise ConnectionAborted(AbortInfo(
        reason="rto_exhausted", at_s=12.5, flow_id=0, attempts=11,
        detail="dead path"))


def flaky(path):
    """Fail on the first attempt, succeed on the second."""
    if not os.path.exists(path):
        with open(path, "w") as f:
            f.write("seen\n")
        raise RuntimeError("first attempt fails")
    return "recovered"


def grid_cell(beta, L):
    return beta * L


def seeded_sample():
    import random
    return [random.random() for _ in range(4)]


def calls_in(path) -> int:
    if not os.path.exists(path):
        return 0
    with open(path) as f:
        return sum(1 for _ in f)


# ---------------------------------------------------------------------------
class TestTaskModel:
    def test_derive_seed_deterministic_and_distinct(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_signature_unwraps_partials(self):
        task = Task("t", functools.partial(add, a=1), kwargs={"b": 2}, seed=7)
        sig = task_signature(task)
        assert sig["function"].endswith("add")
        assert sig["params"] == {"a": "1", "b": "2"}
        assert sig["seed"] == 7

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError):
            Task("t", fn="not callable")


class TestPool:
    def test_results_in_plan_order(self):
        tasks = [Task(f"t{i}", functools.partial(add, i, 10))
                 for i in range(5)]
        results = execute_tasks(tasks, jobs=3)
        assert [r.name for r in results] == [t.name for t in tasks]
        assert [r.value for r in results] == [10, 11, 12, 13, 14]
        assert all(r.ok and r.attempts == 1 for r in results)

    def test_timeout_kills_and_retries(self):
        task = Task("hang", sleep_forever)
        start = time.monotonic()
        (result,) = execute_tasks([task], jobs=1, timeout=0.5, retries=1)
        assert not result.ok
        assert result.failure == "timeout"
        assert result.attempts == 2
        assert time.monotonic() - start < 30  # killed, not waited out

    def test_crashed_worker_degrades_gracefully(self):
        tasks = [Task("boom", hard_crash),
                 Task("fine", functools.partial(add, 2, 3))]
        results = execute_tasks(tasks, jobs=2)
        boom, fine = results
        assert boom.failure == "crashed"
        assert "exited with code 3" in boom.error
        assert fine.ok and fine.value == 5

    def test_exception_captured_with_traceback(self):
        (result,) = execute_tasks(
            [Task("flaky", flaky, kwargs={"path": "/nonexistent/nope/x"})])
        assert result.failure == "error"
        assert "FileNotFoundError" in result.error

    def test_connection_abort_is_degraded_not_retried(self, tmp_path):
        marker = str(tmp_path / "attempts")
        (result,) = execute_tasks(
            [Task("dead", aborted_transfer, kwargs={"path": marker})],
            retries=2)
        assert not result.ok
        assert result.failure == "aborted"
        assert result.value["reason"] == "rto_exhausted"
        assert "rto_exhausted" in result.error
        # Deterministic outcome: retrying would only reproduce it.
        assert result.attempts == 1
        with open(marker) as f:
            assert len(f.readlines()) == 1

    def test_retry_recovers_flaky_task(self, tmp_path):
        marker = str(tmp_path / "marker")
        (result,) = execute_tasks(
            [Task("flaky", flaky, kwargs={"path": marker})], retries=1)
        assert result.ok
        assert result.value == "recovered"
        assert result.attempts == 2

    def test_seed_reproducible_across_workers(self):
        a = execute_tasks([Task("s", seeded_sample, seed=99)], jobs=1)
        b = execute_tasks([Task("s", seeded_sample, seed=99)], jobs=2)
        c = execute_tasks([Task("s", seeded_sample, seed=100)])
        assert a[0].value == b[0].value
        assert a[0].value != c[0].value

    def test_bad_arguments_rejected(self):
        with pytest.raises(ValueError):
            execute_tasks([], jobs=0)
        with pytest.raises(ValueError):
            execute_tasks([], timeout=-1)


class TestCache:
    def test_hit_then_miss_semantics(self, tmp_path):
        cache = ResultCache(str(tmp_path), fingerprint="f1")
        task = Task("t", add, kwargs={"a": 1, "b": 2}, seed=3)
        key = cache.key_for(task)
        assert cache.load(key) == (False, None)
        assert cache.store(key, 42, meta={"note": "test"})
        assert cache.load(key) == (True, 42)

    def test_key_changes_with_params_seed_and_code(self, tmp_path):
        cache1 = ResultCache(str(tmp_path), fingerprint="f1")
        cache2 = ResultCache(str(tmp_path), fingerprint="f2")
        base = Task("t", add, kwargs={"a": 1, "b": 2}, seed=3)
        other_param = Task("t", add, kwargs={"a": 1, "b": 99}, seed=3)
        other_seed = Task("t", add, kwargs={"a": 1, "b": 2}, seed=4)
        keys = {cache1.key_for(base), cache1.key_for(other_param),
                cache1.key_for(other_seed), cache2.key_for(base)}
        assert len(keys) == 4  # all distinct

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path), fingerprint="f")
        key = cache.key_for(Task("t", add))
        cache.store(key, 1)
        with open(os.path.join(str(tmp_path), key + ".pkl"), "wb") as f:
            f.write(b"garbage")
        assert cache.load(key) == (False, None)

    def test_code_fingerprint_stable(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 64


class TestCampaign:
    def test_cache_skips_reexecution(self, tmp_path):
        counter = str(tmp_path / "calls")
        cache_dir = str(tmp_path / "cache")

        def build():
            c = Campaign("c")
            c.add("rec", record_call, path=counter, value=7)
            return c

        first = build().run(cache_dir=cache_dir)
        assert first.result("rec").cache == "miss"
        assert first.result("rec").value == 7
        assert calls_in(counter) == 1

        second = build().run(cache_dir=cache_dir)
        assert second.result("rec").cache == "hit"
        assert second.result("rec").value == 7
        assert calls_in(counter) == 1  # not executed again

    def test_parameter_change_invalidates_cache(self, tmp_path):
        counter = str(tmp_path / "calls")
        cache_dir = str(tmp_path / "cache")
        c1 = Campaign("c")
        c1.add("rec", record_call, path=counter, value=1)
        c1.run(cache_dir=cache_dir)
        c2 = Campaign("c")
        c2.add("rec", record_call, path=counter, value=2)
        outcome = c2.run(cache_dir=cache_dir)
        assert outcome.result("rec").cache == "miss"
        assert outcome.result("rec").value == 2
        assert calls_in(counter) == 2

    def test_failure_does_not_abort_campaign(self, tmp_path):
        c = Campaign("c")
        c.add("boom", hard_crash)
        c.add("ok", add, a=1, b=1)
        outcome = c.run(jobs=2)
        assert not outcome.all_ok
        assert [r.name for r in outcome.failed] == ["boom"]
        assert outcome.result("ok").value == 2

    def test_failed_results_never_cached(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        c1 = Campaign("c")
        c1.add("boom", hard_crash)
        c1.run(cache_dir=cache_dir)
        c2 = Campaign("c")
        c2.add("boom", hard_crash)
        outcome = c2.run(cache_dir=cache_dir)
        assert outcome.result("boom").cache == "miss"
        assert not outcome.result("boom").ok

    def test_manifest_written_with_schema(self, tmp_path):
        manifest_path = str(tmp_path / "m.json")
        c = Campaign("mycampaign")
        c.add("a", add, a=1, b=2)
        c.add("boom", hard_crash)
        outcome = c.run(jobs=2, retries=1, manifest_path=manifest_path)
        manifest = read_manifest(manifest_path)
        assert manifest == outcome.manifest
        assert manifest["schema_version"] == 1
        assert manifest["campaign"] == "mycampaign"
        assert manifest["jobs"] == 2
        assert manifest["counts"] == {"total": 2, "ok": 1, "failed": 1,
                                      "cache_hits": 0, "cache_misses": 0}
        by_name = {t["name"]: t for t in manifest["tasks"]}
        assert by_name["a"]["status"] == "ok"
        assert by_name["boom"]["status"] == "failed"
        assert by_name["boom"]["failure"] == "crashed"
        assert by_name["boom"]["attempts"] == 2
        assert manifest["host"]["python"]
        assert json.dumps(manifest)  # JSON-serializable end to end

    def test_duplicate_names_rejected(self):
        c = Campaign("c")
        c.add("a", add)
        with pytest.raises(ValueError):
            c.add("a", add)
        with pytest.raises(ValueError):
            run_campaign([Task("x", add), Task("x", add)])

    def test_add_grid_builds_parameter_sweep(self):
        c = Campaign("sweep")
        tasks = c.add_grid("beta{beta}_L{L}", grid_cell,
                           [{"beta": 2, "L": 2}, {"beta": 4, "L": 8}])
        assert [t.name for t in tasks] == ["beta2_L2", "beta4_L8"]
        outcome = run_campaign(c, jobs=2)
        assert [r.value for r in outcome.results] == [4, 32]

    def test_run_campaign_accepts_plain_tasks(self):
        outcome = run_campaign([Task("a", add, kwargs={"a": 1, "b": 2})])
        assert outcome.result("a").value == 3


class TestExperimentParity:
    """Serial and parallel execution must emit byte-identical tables."""

    def _campaign(self):
        c = Campaign("parity")
        c.add("fig08b", functools.partial(fig08_ack_frequency.run_measured,
                                          duration_s=0.5))
        c.add("fig17a", fig17_freq_model.run_vs_bandwidth)
        return c

    def test_serial_vs_parallel_identical(self):
        serial = self._campaign().run(jobs=1)
        parallel = self._campaign().run(jobs=2)
        assert serial.all_ok and parallel.all_ok
        for name in ("fig08b", "fig17a"):
            assert (serial.result(name).value.format_text()
                    == parallel.result(name).value.format_text())
