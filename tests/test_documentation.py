"""Documentation hygiene: every module and public class carries a
docstring, and the repo-level documents reference real artifacts."""

import importlib
import pathlib
import pkgutil

import repro

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def iter_repro_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


class TestDocstrings:
    def test_every_module_documented(self):
        undocumented = [
            m.__name__ for m in iter_repro_modules() if not m.__doc__
        ]
        assert undocumented == []

    def test_public_classes_documented(self):
        missing = []
        for module in iter_repro_modules():
            for name in dir(module):
                if name.startswith("_"):
                    continue
                obj = getattr(module, name)
                if isinstance(obj, type) and obj.__module__ == module.__name__:
                    if not obj.__doc__:
                        missing.append(f"{module.__name__}.{name}")
        assert missing == []


class TestRepoDocuments:
    def test_design_md_lists_every_experiment_module(self):
        design = (REPO_ROOT / "DESIGN.md").read_text()
        experiments = pathlib.Path(
            REPO_ROOT / "src" / "repro" / "experiments"
        )
        assert experiments.is_dir()
        # Every figure bench named in DESIGN.md exists on disk.
        for line in design.splitlines():
            if "benchmarks/bench_" in line:
                name = line.split("benchmarks/")[1].split("`")[0].strip()
                assert (REPO_ROOT / "benchmarks" / name).exists(), name

    def test_experiments_md_references_real_benches(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        for token in ("bench_fig01_goodput_wlan.py", "bench_fig14_pantheon.py",
                      "bench_ablations.py"):
            assert token in text
            assert (REPO_ROOT / "benchmarks" / token).exists()

    def test_readme_quickstart_paths_exist(self):
        text = (REPO_ROOT / "README.md").read_text()
        for example in ("examples/quickstart.py",):
            assert example in text
            assert (REPO_ROOT / example).exists()

    def test_paper_confirmation_present(self):
        design = (REPO_ROOT / "DESIGN.md").read_text()
        assert "Paper identity confirmed" in design
