"""repro.fleet: workload generation, shards, manifests, resume.

Everything here runs deliberately tiny campaigns (a handful of flows
per shard) — the point is contract coverage, not load.  The CI
``fleet-smoke`` job exercises the full CLI path at a larger scale.
"""

import json
import random

import pytest

from repro.fleet import (
    FleetConfig,
    ManifestMismatch,
    ShardManifest,
    ShardSpec,
    WorkloadConfig,
    aggregate,
    aggregate_digest,
    campaign_report,
    generate_flows,
    plan_shards,
    run_fleet,
    run_shard,
)
from repro.fleet.manifest import canonical_json
from repro.fleet.report import merge_scheme_digest_order_check
from repro.fleet.shard import expected_flows


def tiny_workload(**overrides):
    base = dict(arrival="poisson", mean_arrival_hz=3.0, duration_s=4.0,
                size_median_bytes=20_000, size_sigma=0.8,
                max_bytes=200_000)
    base.update(overrides)
    return WorkloadConfig(**base)


def tiny_spec(shard_id=0, scheme="tcp-tack", seed=11, **workload_overrides):
    return ShardSpec(shard_id=shard_id, scheme=scheme, seed=seed,
                     workload=tiny_workload(**workload_overrides),
                     drain_s=5.0)


# ----------------------------------------------------------------------
# workload
# ----------------------------------------------------------------------

class TestWorkload:
    def test_deterministic_for_seeded_rng(self):
        cfg = tiny_workload(mean_arrival_hz=40.0, duration_s=10.0)
        a = list(generate_flows(cfg, random.Random("w")))
        b = list(generate_flows(cfg, random.Random("w")))
        assert [(f.index, f.start_s, f.size_bytes) for f in a] == \
            [(f.index, f.start_s, f.size_bytes) for f in b]
        assert a  # non-empty

    def test_arrivals_ordered_and_bounded(self):
        for arrival in ("poisson", "onoff"):
            cfg = tiny_workload(arrival=arrival, mean_arrival_hz=30.0,
                                duration_s=8.0, diurnal_amplitude=0.6,
                                diurnal_period_s=4.0)
            flows = list(generate_flows(cfg, random.Random(3)))
            starts = [f.start_s for f in flows]
            assert starts == sorted(starts), arrival
            assert all(0.0 <= t < cfg.duration_s for t in starts), arrival
            assert all(cfg.min_bytes <= f.size_bytes <= cfg.max_bytes
                       for f in flows), arrival

    def test_poisson_mean_rate_tracks_config(self):
        cfg = tiny_workload(mean_arrival_hz=60.0, duration_s=40.0)
        n = len(list(generate_flows(cfg, random.Random(1))))
        expected = expected_flows(cfg)
        assert n == pytest.approx(expected, rel=0.15)

    def test_start_index_offsets_flow_indices(self):
        cfg = tiny_workload()
        flows = list(generate_flows(cfg, random.Random(5), start_index=100))
        assert flows[0].index == 100
        assert [f.index for f in flows] == \
            list(range(100, 100 + len(flows)))

    def test_round_trip(self):
        cfg = tiny_workload(arrival="onoff", n_users=7,
                            diurnal_amplitude=0.4)
        again = WorkloadConfig.from_dict(json.loads(
            canonical_json(cfg.to_dict())))
        assert again.to_dict() == cfg.to_dict()


# ----------------------------------------------------------------------
# shard
# ----------------------------------------------------------------------

class TestShard:
    def test_summary_shape_and_determinism(self):
        spec = tiny_spec()
        first = run_shard(spec.to_dict())
        second = run_shard(spec.to_dict())
        assert canonical_json(first) == canonical_json(second)
        for section in ("flows", "bytes", "packets", "links", "airtime",
                        "digests", "engine"):
            assert section in first, section
        assert first["scheme"] == "tcp-tack"
        assert first["flows"]["started"] > 0
        assert first["flows"]["completed"] > 0
        assert first["bytes"]["delivered"] > 0
        # Flat memory contract: every started flow was retired into the
        # digests, none retained.
        flows = first["flows"]
        assert (flows["completed"] + flows["aborted"]
                + flows["unfinished"]) == flows["started"]
        assert first["digests"]["fct_s"]["count"] == flows["completed"]

    def test_scheme_changes_outcome(self):
        tack = run_shard(tiny_spec(scheme="tcp-tack").to_dict())
        perpkt = run_shard(tiny_spec(scheme="tcp-bbr-perpacket").to_dict())
        # Per-packet ACKing must produce strictly more feedback per
        # data packet than TACK on identical offered load.
        def ack_per_data(summary):
            return summary["packets"]["acks"] / summary["packets"]["data"]
        assert ack_per_data(perpkt) > ack_per_data(tack)

    def test_spec_round_trip(self):
        spec = tiny_spec(shard_id=3, scheme="tcp-bbr", seed=99)
        again = ShardSpec.from_dict(json.loads(
            canonical_json(spec.to_dict())))
        assert again.to_dict() == spec.to_dict()
        assert again.name == spec.name


# ----------------------------------------------------------------------
# manifest
# ----------------------------------------------------------------------

class TestManifest:
    def header(self):
        return {"seed": 1}

    def test_append_and_reload(self, tmp_path):
        path = tmp_path / "manifest.jsonl"
        with ShardManifest(path) as m:
            done = m.ensure_header("fp-1", self.header())
            assert done == {}
            m.append_shard({"shard_id": 0, "x": 1})
            m.append_shard({"shard_id": 1, "x": 2})
        with ShardManifest(path) as m:
            done = m.ensure_header("fp-1", self.header())
        assert sorted(done) == [0, 1]
        assert done[1]["x"] == 2

    def test_truncated_tail_is_dropped(self, tmp_path):
        path = tmp_path / "manifest.jsonl"
        with ShardManifest(path) as m:
            m.ensure_header("fp-1", self.header())
            m.append_shard({"shard_id": 0, "x": 1})
            m.append_shard({"shard_id": 1, "x": 2})
        # Simulate a mid-write crash: chop the final record in half.
        raw = path.read_bytes()
        path.write_bytes(raw[:-20])
        with ShardManifest(path) as m:
            done = m.ensure_header("fp-1", self.header())
            # Shard 1's record was truncated -> it is simply not done
            # and will be re-run; shard 0 survives.
            assert sorted(done) == [0]
            m.append_shard({"shard_id": 1, "x": 2})
        with ShardManifest(path) as m:
            assert sorted(m.ensure_header("fp-1", self.header())) == [0, 1]

    def test_fingerprint_mismatch_raises(self, tmp_path):
        path = tmp_path / "manifest.jsonl"
        with ShardManifest(path) as m:
            m.ensure_header("fp-1", self.header())
        with ShardManifest(path) as m:
            with pytest.raises(ManifestMismatch):
                m.ensure_header("fp-2", self.header())


# ----------------------------------------------------------------------
# campaign + resume
# ----------------------------------------------------------------------

def tiny_campaign(seed=21):
    return FleetConfig(schemes=("tcp-tack", "tcp-bbr"), shards_per_scheme=1,
                       seed=seed, workload=tiny_workload(), drain_s=5.0)


class TestCampaign:
    def test_plan_interleaves_schemes_with_stable_ids(self):
        config = FleetConfig(schemes=("a", "b"), shards_per_scheme=2,
                             seed=5, workload=tiny_workload())
        specs = plan_shards(config)
        assert [s.shard_id for s in specs] == [0, 1, 2, 3]
        assert [s.scheme for s in specs] == ["a", "b", "a", "b"]
        assert len({s.seed for s in specs}) == len(specs)
        # Planning is a pure function of the config.
        assert [s.to_dict() for s in plan_shards(config)] == \
            [s.to_dict() for s in specs]

    def test_config_round_trip_and_fingerprint(self):
        config = tiny_campaign()
        again = FleetConfig.from_dict(json.loads(
            canonical_json(config.to_dict())))
        assert again.to_dict() == config.to_dict()
        assert again.fingerprint() == config.fingerprint()
        assert again.fingerprint() != tiny_campaign(seed=22).fingerprint()

    def test_resume_reproduces_exact_digest(self, tmp_path):
        config = tiny_campaign()

        full = run_fleet(config, tmp_path / "full.jsonl")
        assert full.complete and full.ran == 2 and not full.failed

        # Interrupted run: only one shard lands, outcome is incomplete.
        partial = run_fleet(config, tmp_path / "resumed.jsonl",
                            max_shards=1)
        assert not partial.complete
        assert partial.ran == 1

        # Resume: the missing shard runs, the finished one is skipped.
        resumed = run_fleet(config, tmp_path / "resumed.jsonl")
        assert resumed.complete
        assert resumed.skipped == 1 and resumed.ran == 1

        digest_of = {}
        for name in ("full", "resumed"):
            report = campaign_report(tmp_path / f"{name}.jsonl")
            assert report["missing_shards"] == []
            digest_of[name] = report["aggregate_digest"]
        assert digest_of["full"] == digest_of["resumed"]

    def test_changed_config_refuses_existing_manifest(self, tmp_path):
        run_fleet(tiny_campaign(), tmp_path / "m.jsonl", max_shards=1)
        with pytest.raises(ManifestMismatch):
            run_fleet(tiny_campaign(seed=99), tmp_path / "m.jsonl")

    def test_aggregate_order_insensitive(self):
        shards = [run_shard(tiny_spec(shard_id=i, scheme=s, seed=7 + i)
                            .to_dict())
                  for i, s in enumerate(("tcp-tack", "tcp-tack",
                                         "tcp-bbr"))]
        assert merge_scheme_digest_order_check(shards)
        by_scheme = aggregate(shards)
        assert sorted(by_scheme) == ["tcp-bbr", "tcp-tack"]
        assert by_scheme["tcp-tack"].shards == 2
        assert len(aggregate_digest(by_scheme)) == 64

# ----------------------------------------------------------------------
# flow-doctor fold
# ----------------------------------------------------------------------

class TestDiagnosisFold:
    def test_shard_summary_carries_diagnosis_block(self):
        summary = run_shard(tiny_spec().to_dict())
        diag = summary["diagnosis"]
        assert diag["flows"] == summary["flows"]["started"]
        total = sum(sum(p) for p in diag["state_time_partials"].values())
        assert total > 0
        assert all(v >= 0 for v in diag["state_bytes"].values())

    def test_aggregate_exposes_top_state(self):
        shards = [run_shard(tiny_spec(shard_id=i, seed=7 + i).to_dict())
                  for i in range(2)]
        agg = aggregate(shards)["tcp-tack"]
        assert agg.diag_flows == sum(s["diagnosis"]["flows"]
                                     for s in shards)
        top = agg.top_state()
        assert top is not None and top != "closing"
        fractions = agg.state_time_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        doc = agg.to_dict()["diagnosis"]
        assert doc["flows"] == agg.diag_flows
        assert sum(doc["state_time_partials"][top]) > 0

    def test_fold_tolerates_missing_diagnosis_block(self):
        # Forward-compat: summaries written before the doctor existed
        # (or by a stripped-down shard) must still aggregate.
        shards = [run_shard(tiny_spec(shard_id=i, seed=7 + i).to_dict())
                  for i in range(2)]
        shards[1] = dict(shards[1])
        shards[1].pop("diagnosis")
        agg = aggregate(shards)["tcp-tack"]
        assert agg.diag_flows == shards[0]["diagnosis"]["flows"]
        assert len(aggregate_digest(aggregate(shards))) == 64
