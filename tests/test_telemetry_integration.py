"""End-to-end telemetry integration: Eq. (3) from a trace, runner capture.

The headline acceptance check lives here: a traced fig. 8-style run's
ACK frequency, *re-derived offline from the trace via the CLI summarize
path*, must match the analytic TACK frequency of Eq. (3)::

    f_tack = min( bw / (L * MSS),  beta / RTT_min )

within 10%.
"""

import json

import pytest

from repro.analysis.ack_frequency import tack_frequency
from repro.experiments.fig08_ack_frequency import run_traced
from repro.runner import Campaign
from repro.telemetry import read_header, trace_digest
from repro.telemetry.cli import main as cli_main

_RATE_BPS = 20e6
_RTT_S = 0.04
_DURATION_S = 6.0
_WARMUP_S = 2.0


class TestEq3FromTrace:
    @pytest.fixture(scope="class")
    def traced(self, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("fig08") / "fig08.jsonl")
        table = run_traced(path, rate_bps=_RATE_BPS, rtt_s=_RTT_S,
                           duration_s=_DURATION_S, warmup_s=_WARMUP_S)
        return path, table

    def test_ack_frequency_matches_eq3_via_cli(self, traced, capsys):
        path, _ = traced
        assert cli_main(["summarize", path, "--json",
                         "--start", str(_WARMUP_S),
                         "--end", str(_DURATION_S)]) == 0
        doc = json.loads(capsys.readouterr().out)
        flow = next(iter(doc["flows"].values()))
        tacks = flow["acks"]["by_kind"].get("tack", 0)
        measured_hz = tacks / doc["window"]["duration_s"]
        analytic_hz = tack_frequency(_RATE_BPS, _RTT_S)
        assert measured_hz == pytest.approx(analytic_hz, rel=0.10)

    def test_periodic_clock_binds_at_this_operating_point(self, traced, capsys):
        # 20 Mbps / 40 ms: beta/RTT_min = 100 Hz < bw/(L*MSS) ~ 833 Hz,
        # so the trace's TACK reasons must be dominated by "periodic".
        path, _ = traced
        cli_main(["summarize", path, "--json",
                  "--start", str(_WARMUP_S), "--end", str(_DURATION_S)])
        doc = json.loads(capsys.readouterr().out)
        reasons = next(iter(doc["flows"].values()))["acks"]["reasons"]
        periodic = reasons.get("periodic", 0)
        bytecount = reasons.get("bytecount", 0)
        assert periodic > 10 * max(bytecount, 1)

    def test_table_agrees_with_trace(self, traced):
        _, table = traced
        row = table.rows[0]
        assert row["analytic_hz"] == pytest.approx(
            tack_frequency(_RATE_BPS, _RTT_S))
        assert row["measured_hz"] == pytest.approx(row["analytic_hz"],
                                                   rel=0.10)

    def test_trace_header_records_run_parameters(self, traced):
        path, _ = traced
        meta = read_header(path)["meta"]
        assert meta["rate_bps"] == _RATE_BPS
        assert meta["seed"] == 7


class TestRunnerTraceCapture:
    def test_traced_task_lands_in_manifest(self, tmp_path):
        trace_path = str(tmp_path / "task.jsonl")
        campaign = Campaign("telemetry-it", base_seed=3)
        campaign.add("fig08-traced", run_traced, trace_path=trace_path,
                     duration_s=1.0, warmup_s=0.5)
        outcome = campaign.run(jobs=1)
        assert outcome.all_ok
        result = outcome.result("fig08-traced")
        assert result.trace is not None
        assert result.trace["path"] == trace_path
        assert result.trace["sha256"] == trace_digest(trace_path)
        entry = next(t for t in outcome.manifest["tasks"]
                     if t["name"] == "fig08-traced")
        assert entry["trace"] == result.trace
        assert outcome.manifest["schema_version"] == 1

    def test_traced_task_bypasses_cache(self, tmp_path):
        trace_path = str(tmp_path / "task.jsonl")
        cache_dir = str(tmp_path / "cache")

        def build():
            campaign = Campaign("telemetry-cache", base_seed=3)
            campaign.add("traced", run_traced, trace_path=trace_path,
                         duration_s=1.0, warmup_s=0.5)
            return campaign.run(jobs=1, cache_dir=cache_dir)

        first = build()
        digest_one = first.result("traced").trace["sha256"]
        second = build()
        # Second run re-executed (no hit) and regenerated the trace.
        assert second.result("traced").cache == "off"
        assert second.result("traced").attempts == 1
        assert second.result("traced").trace["sha256"] == digest_one

    def test_untraced_tasks_are_unaffected(self, tmp_path):
        campaign = Campaign("telemetry-plain", base_seed=3)
        campaign.add("plain", run_traced, duration_s=1.0, warmup_s=0.5)
        outcome = campaign.run(jobs=1,
                               cache_dir=str(tmp_path / "cache"))
        result = outcome.result("plain")
        assert result.ok
        assert result.trace is None
        assert result.cache == "miss"

    def test_trace_is_deterministic_across_runs(self, tmp_path):
        digests = []
        for name in ("a", "b"):
            path = str(tmp_path / f"{name}.jsonl")
            campaign = Campaign(f"det-{name}", base_seed=3)
            campaign.add("traced", run_traced, trace_path=path,
                         duration_s=1.0, warmup_s=0.5)
            outcome = campaign.run(jobs=1)
            digests.append(outcome.result("traced").trace["sha256"])
        assert digests[0] == digests[1]
