"""Unit tests for the stats and analysis packages."""

import pytest

from repro.analysis.ack_frequency import (
    byte_counting_frequency,
    delayed_ack_frequency,
    per_packet_frequency,
    periodic_frequency,
    pivot_bandwidth_bps,
    pivot_rtt_s,
    reduction_vs_tcp,
    tack_frequency,
)
from repro.analysis.buffer_req import (
    beta_lower_bound,
    buffer_requirement_bytes,
    l_upper_bound,
    min_send_window_bytes,
)
from repro.analysis.thresholds import additional_blocks, rich_info_threshold
from repro.stats.percentile import median, percentile
from repro.stats.power import kleinrock_power
from repro.stats.ranking import RankSummary, rank_schemes
from repro.stats.series import TimeSeries


class TestPercentile:
    def test_median_simple(self):
        assert median([1, 2, 3]) == 2

    def test_interpolation(self):
        assert percentile([0, 10], 50) == 5

    def test_single_value(self):
        assert percentile([7], 95) == 7

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_pct(self):
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestTimeSeries:
    def test_window_selection(self):
        ts = TimeSeries()
        for i in range(10):
            ts.add(i * 1.0, float(i))
        assert ts.window(2.0, 5.0) == [2.0, 3.0, 4.0, 5.0]

    def test_mean(self):
        ts = TimeSeries()
        ts.add(0, 1.0)
        ts.add(1, 3.0)
        assert ts.mean() == 2.0

    def test_time_must_not_rewind(self):
        ts = TimeSeries()
        ts.add(1.0, 0.0)
        with pytest.raises(ValueError):
            ts.add(0.5, 0.0)

    def test_empty_mean_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries().mean()

    def test_last_default(self):
        assert TimeSeries().last(default=9.0) == 9.0


class TestPower:
    def test_higher_throughput_higher_power(self):
        assert kleinrock_power(10e6, 0.1) > kleinrock_power(1e6, 0.1)

    def test_lower_delay_higher_power(self):
        assert kleinrock_power(10e6, 0.01) > kleinrock_power(10e6, 0.1)

    def test_zero_throughput_ranks_worst(self):
        assert kleinrock_power(0, 0.1) == float("-inf")

    def test_invalid_delay(self):
        with pytest.raises(ValueError):
            kleinrock_power(1e6, 0.0)


class TestRanking:
    def test_clear_winner(self):
        trials = [{"a": 3.0, "b": 2.0, "c": 1.0} for _ in range(5)]
        result = rank_schemes(trials)
        assert result[0].scheme == "a"
        assert result[0].mean == 1.0
        assert result[-1].scheme == "c"

    def test_rank_distribution(self):
        trials = [
            {"a": 2.0, "b": 1.0},
            {"a": 1.0, "b": 2.0},
        ]
        result = rank_schemes(trials)
        for summary in result:
            assert sorted(summary.ranks) == [1, 2]

    def test_quartiles(self):
        s = RankSummary("x", [1, 1, 2, 3, 3])
        q1, q2, q3 = s.quartiles()
        assert q2 == 2

    def test_mismatched_trials_rejected(self):
        with pytest.raises(ValueError):
            rank_schemes([{"a": 1.0}, {"b": 1.0}])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            rank_schemes([])


class TestAckFrequencyModel:
    def test_per_packet(self):
        # 12 Mbps of 1500-byte packets = 1000 pkt/s
        assert per_packet_frequency(12e6) == pytest.approx(1000.0)

    def test_delayed_high_rate_is_half(self):
        assert delayed_ack_frequency(12e6) == pytest.approx(500.0)

    def test_delayed_low_rate_per_packet(self):
        # 2 packets take longer than gamma -> per-packet regime
        f = delayed_ack_frequency(0.05e6, gamma_s=0.2)
        assert f == pytest.approx(per_packet_frequency(0.05e6))

    def test_periodic(self):
        assert periodic_frequency(0.025) == 40.0

    def test_pivot_consistency(self):
        """At the pivot the two clocks agree."""
        rtt = 0.05
        bw_star = pivot_bandwidth_bps(rtt)
        assert byte_counting_frequency(bw_star, 2) == pytest.approx(4.0 / rtt)
        assert pivot_rtt_s(bw_star) == pytest.approx(rtt)

    def test_reduction_positive_at_high_bw(self):
        assert reduction_vs_tcp(590e6, 0.08) > 0

    def test_fig17_shape_frequency_plateaus(self):
        """Fig. 17(a): above the pivot, f_tack is flat in bw."""
        rtt = 0.08
        f1 = tack_frequency(100e6, rtt)
        f2 = tack_frequency(1000e6, rtt)
        assert f1 == f2 == pytest.approx(4.0 / rtt)

    def test_validation(self):
        with pytest.raises(ValueError):
            byte_counting_frequency(1e6, 0)
        with pytest.raises(ValueError):
            periodic_frequency(0)
        with pytest.raises(ValueError):
            tack_frequency(1e6, 0)


class TestThresholds:
    def test_lossless_data_path_never_needs_rich(self):
        assert rich_info_threshold(0.0, bdp_bytes=1e6) == float("inf")

    def test_large_bdp_branch(self):
        """Eq. (7): rho' <= Q*MSS / (rho*bdp)."""
        got = rich_info_threshold(0.01, bdp_bytes=15e6, q_blocks=1)
        assert got == pytest.approx(1 * 1500 / (0.01 * 15e6))

    def test_small_bdp_branch(self):
        """Eq. (8): rho' <= Q / (rho*L)."""
        got = rich_info_threshold(0.1, bdp_bytes=1000, q_blocks=1)
        assert got == pytest.approx(1 / (0.1 * 2))

    def test_additional_blocks_zero_when_q_sufficient(self):
        assert additional_blocks(0.01, 0.001, bdp_bytes=15e6, q_blocks=4) == 0

    def test_additional_blocks_positive_under_heavy_ack_loss(self):
        assert additional_blocks(0.05, 0.2, bdp_bytes=15e6, q_blocks=1) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            rich_info_threshold(1.5, 1e6)


class TestBufferRequirements:
    def test_paper_beta4_needs_one_third_bdp(self):
        """Paper S7: beta=4 -> 0.33 bdp of buffer."""
        assert buffer_requirement_bytes(3e6, beta=4) == pytest.approx(1e6)

    def test_beta2_needs_full_bdp(self):
        assert buffer_requirement_bytes(1e6, beta=2) == pytest.approx(1e6)

    def test_wmin_formula(self):
        assert min_send_window_bytes(1e6, beta=2) == pytest.approx(2e6)

    def test_beta_below_two_rejected(self):
        with pytest.raises(ValueError):
            min_send_window_bytes(1e6, beta=1)

    def test_l_upper_bound_paper_example(self):
        """Appendix B.2: Q=4, rho=rho'=10% -> L <= 400."""
        assert l_upper_bound(4, 0.1, 0.1) == pytest.approx(400.0)

    def test_l_unbounded_lossless(self):
        assert l_upper_bound(4, 0.0, 0.1) == float("inf")

    def test_beta_lower_bound(self):
        assert beta_lower_bound() == 2
