"""Determinism of the experiment harness: same seed, same tables."""

from repro.experiments import fig03_contention, fig08_ack_frequency


class TestExperimentDeterminism:
    def test_fig03_identical_across_runs(self):
        a = fig03_contention.run(duration_s=1.0)
        b = fig03_contention.run(duration_s=1.0)
        assert a.rows == b.rows

    def test_fig03_seed_changes_results(self):
        a = fig03_contention.run(duration_s=1.0, seed=7)
        b = fig03_contention.run(duration_s=1.0, seed=8)
        # Different backoff draws: collision counts differ somewhere.
        assert a.rows != b.rows

    def test_analytic_tables_pure(self):
        a = fig08_ack_frequency.run_analytic()
        b = fig08_ack_frequency.run_analytic()
        assert a.rows == b.rows
