"""Unit tests for the application workloads."""

import pytest

from repro.app.bulk import BulkFlow
from repro.app.cross_traffic import OnOffCrossTraffic
from repro.app.rpc import RpcClient
from repro.app.udp_blast import UdpAckResponder, UdpBlaster, run_contention_trial
from repro.app.video import RtpUdpVideoSession, VideoSession
from repro.netsim.paths import wired_path, wlan_path


class TestUdpBlaster:
    def test_rate_held(self, sim):
        path = wired_path(sim, rate_bps=1e9, rtt_s=0.0)
        got = [0]
        path.forward.connect(lambda p: got.__setitem__(0, got[0] + p.size))
        blaster = UdpBlaster(sim, path.forward, rate_bps=10e6)
        blaster.start()
        sim.run(until=1.0)
        blaster.stop()
        assert got[0] * 8 == pytest.approx(10e6, rel=0.02)

    def test_responder_ack_every_l(self, sim):
        path = wired_path(sim, rate_bps=1e9, rtt_s=0.0)
        responder = UdpAckResponder(sim, path.reverse, count_l=4)
        path.forward.connect(responder.on_packet)
        blaster = UdpBlaster(sim, path.forward, rate_bps=10e6)
        blaster.start()
        sim.run(until=1.0)
        assert responder.acks_sent == responder.packets_received // 4

    def test_contention_trial_over_wlan(self, sim):
        path = wlan_path(sim, "802.11n")
        result = run_contention_trial(
            sim, path.forward, path.reverse, count_l=1,
            rate_bps=50e6, duration_s=0.5, medium=path.medium,
        )
        assert result.data_throughput_bps > 40e6
        assert result.ack_throughput_bps > 0
        assert 0 <= result.collision_rate < 1

    def test_validation(self, sim):
        path = wired_path(sim, 1e6, 0.0)
        with pytest.raises(ValueError):
            UdpBlaster(sim, path.forward, rate_bps=0)
        with pytest.raises(ValueError):
            UdpAckResponder(sim, path.reverse, count_l=0)


class TestBulkFlow:
    def test_bulk_goodput_measured(self, sim):
        path = wired_path(sim, 20e6, 0.02)
        flow = BulkFlow(sim, path, "tcp-tack", initial_rtt_s=0.02)
        flow.start()
        sim.run(until=3.0)
        assert flow.goodput_bps(1.0) > 15e6
        assert flow.ack_count() > 0
        assert 0 < flow.ack_ratio() < 1

    def test_fixed_transfer_completion(self, sim):
        path = wired_path(sim, 20e6, 0.02)
        flow = BulkFlow(sim, path, "tcp-bbr", initial_rtt_s=0.02,
                        total_bytes=150 * 1500)
        flow.start()
        sim.run(until=5.0)
        assert flow.completed
        assert flow.completion_time() is not None


class TestVideo:
    def test_smooth_playback_at_low_bitrate(self, sim):
        path = wlan_path(sim, "802.11n", extra_rtt_s=0.01)
        v = VideoSession(sim, path, "tcp-tack", bitrate_bps=20e6)
        v.start()
        sim.run(until=10.0)
        stats = v.finish()
        assert stats.rebuffering_ratio() < 0.02
        assert stats.frames_played > 250
        assert stats.startup_delay_s is not None

    def test_rebuffering_when_bitrate_exceeds_capacity(self, sim):
        path = wlan_path(sim, "802.11g", extra_rtt_s=0.01)  # ~25 Mbps
        v = VideoSession(sim, path, "tcp-bbr", bitrate_bps=60e6)
        v.start()
        sim.run(until=10.0)
        stats = v.finish()
        assert stats.rebuffering_ratio() > 0.2

    def test_reliable_transport_never_macroblocks(self, sim):
        path = wlan_path(sim, "802.11n", per_mpdu_error_rate=0.02)
        v = VideoSession(sim, path, "tcp-tack", bitrate_bps=20e6)
        v.start()
        sim.run(until=5.0)
        assert v.finish().frames_macroblocked == 0

    def test_rtp_udp_macroblocks_under_loss(self, sim):
        path = wlan_path(sim, "802.11n", per_mpdu_error_rate=0.05)
        v = RtpUdpVideoSession(sim, path, bitrate_bps=100e6)
        v.start()
        sim.run(until=5.0)
        stats = v.finish()
        assert stats.frames_macroblocked > 0
        assert stats.stall_time_s == pytest.approx(0.0)


class TestRpc:
    def test_latency_tracks_rtt(self, sim):
        path = wired_path(sim, 100e6, 0.04)
        client = RpcClient(sim, path, "tcp-tack", response_bytes=15_000,
                           interval_s=0.2, initial_rtt_s=0.04)
        client.start()
        sim.run(until=3.0)
        client.stop()
        assert client.stats.completed >= 10
        # ~1 RTT plus transmission; far below two RTTs at this size.
        assert client.stats.mean_latency_s() < 0.12

    def test_all_issued_eventually_complete(self, sim):
        path = wired_path(sim, 100e6, 0.02)
        client = RpcClient(sim, path, "tcp-bbr", response_bytes=8_000,
                           interval_s=0.1, initial_rtt_s=0.02)
        client.start()
        sim.run(until=2.0)
        client.stop()
        sim.run(until=3.0)
        assert client.stats.completed == client.stats.issued


class TestCrossTraffic:
    def test_on_off_produces_traffic(self, sim):
        path = wired_path(sim, 10e6, 0.02)
        x = OnOffCrossTraffic(sim, path.forward, rate_bps=5e6)
        x.start()
        sim.run(until=5.0)
        assert x.packets_sent > 100

    def test_stop_halts(self, sim):
        path = wired_path(sim, 10e6, 0.02)
        x = OnOffCrossTraffic(sim, path.forward, rate_bps=5e6)
        x.start()
        sim.run(until=1.0)
        x.stop()
        count = x.packets_sent
        sim.run(until=2.0)
        assert x.packets_sent == count

    def test_deterministic_given_seed(self):
        from repro.netsim.engine import Simulator
        counts = []
        for _ in range(2):
            s = Simulator(seed=5)
            path = wired_path(s, 10e6, 0.02)
            x = OnOffCrossTraffic(s, path.forward, rate_bps=5e6)
            x.start()
            s.run(until=3.0)
            counts.append(x.packets_sent)
        assert counts[0] == counts[1]
