"""Tests for the run_all regeneration CLI."""

import functools
import json
import os

import pytest

from repro.experiments import run_all


def _boom():
    raise RuntimeError("synthetic experiment failure")


class TestPlan:
    def test_plan_covers_every_results_artifact(self):
        names = {name for name, _ in run_all.experiment_plan(fast=True)}
        # Every headline figure has an entry.
        for expected in ("fig01_goodput_wlan", "fig03_contention",
                         "fig05b_rich_info", "fig09b_ideal_goodput",
                         "fig13_hybrid", "fig14_pantheon",
                         "ext_tcp_splitting"):
            assert expected in names

    def test_fast_plan_same_experiments(self):
        fast = {n for n, _ in run_all.experiment_plan(fast=True)}
        slow = {n for n, _ in run_all.experiment_plan(fast=False)}
        assert fast == slow

    def test_plan_is_picklable(self):
        """Every entry must ship to worker processes under any start
        method: a plain function or a partial of one, never a lambda."""
        import pickle
        for name, fn in run_all.experiment_plan(fast=True):
            pickle.dumps(fn)

    def test_filter_plan_comma_patterns(self):
        plan = run_all.experiment_plan(fast=True)
        names = [n for n, _ in run_all.filter_plan(plan, "fig05,fig06")]
        assert names == ["fig05a_holb", "fig05b_rich_info",
                         "fig06a_rttmin", "fig06b_owd_loss"]


class TestCli:
    def test_only_filter_runs_single_experiment(self, tmp_path, capsys):
        rc = run_all.main(["--fast", "--only", "fig17a", "--no-cache",
                           "--out", str(tmp_path)])
        assert rc == 0
        assert os.path.exists(tmp_path / "fig17a_vs_bandwidth.txt")
        out = capsys.readouterr().out
        assert "Regenerated 1/1 experiments" in out

    def test_unknown_filter_errors_and_names_available(self, tmp_path,
                                                       capsys):
        with pytest.raises(SystemExit):
            run_all.main(["--only", "nonexistent", "--out", str(tmp_path)])
        err = capsys.readouterr().err
        assert "no experiment matches" in err
        assert "fig01_goodput_wlan" in err  # lists what *is* available

    def test_analytic_experiments_run(self, tmp_path, capsys):
        rc = run_all.main(["--fast", "--only", "eq06_analytic", "--no-cache",
                           "--out", str(tmp_path)])
        assert rc == 0
        content = (tmp_path / "eq06_analytic.txt").read_text()
        assert "threshold" in content

    def test_comma_separated_only(self, tmp_path, capsys):
        rc = run_all.main(["--fast", "--only", "fig17a,eq06_analytic",
                           "--no-cache", "--out", str(tmp_path)])
        assert rc == 0
        assert os.path.exists(tmp_path / "fig17a_vs_bandwidth.txt")
        assert os.path.exists(tmp_path / "eq06_analytic.txt")
        assert "Regenerated 2/2 experiments" in capsys.readouterr().out

    def test_list_prints_names_without_running(self, tmp_path, capsys):
        rc = run_all.main(["--list", "--only", "fig08",
                           "--out", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out.split()
        assert out == ["fig08a_ack_reduction", "fig08b_measured_frequency"]
        assert not os.listdir(tmp_path)  # nothing ran, nothing written

    def test_creates_missing_out_directory(self, tmp_path):
        out = tmp_path / "fresh" / "nested"
        rc = run_all.main(["--fast", "--only", "fig17a", "--no-cache",
                           "--out", str(out)])
        assert rc == 0
        assert os.path.exists(out / "fig17a_vs_bandwidth.txt")

    def test_manifest_written_next_to_tables(self, tmp_path):
        rc = run_all.main(["--fast", "--only", "fig17a", "--no-cache",
                           "--out", str(tmp_path)])
        assert rc == 0
        with open(tmp_path / "run_manifest.json") as f:
            manifest = json.load(f)
        assert manifest["campaign"] == "run_all"
        assert [t["name"] for t in manifest["tasks"]] == ["fig17a_vs_bandwidth"]
        assert manifest["tasks"][0]["status"] == "ok"

    def test_cache_round_trip(self, tmp_path, capsys):
        args = ["--fast", "--only", "fig17a", "--out", str(tmp_path)]
        assert run_all.main(args) == 0
        first = capsys.readouterr().out
        assert "(cached)" not in first
        assert run_all.main(args) == 0
        second = capsys.readouterr().out
        assert "(cached)" in second
        with open(tmp_path / "run_manifest.json") as f:
            manifest = json.load(f)
        assert manifest["counts"]["cache_hits"] == 1

    def test_failed_experiment_reported_and_nonzero_exit(
            self, tmp_path, capsys, monkeypatch):
        plan = [("eq06_analytic",
                 dict(run_all.experiment_plan(True))["eq06_analytic"]),
                ("synthetic_boom", functools.partial(_boom))]
        monkeypatch.setattr(run_all, "experiment_plan", lambda fast: plan)
        rc = run_all.main(["--fast", "--no-cache", "--out", str(tmp_path)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert "synthetic_boom" in out
        # The healthy experiment still produced its table.
        assert os.path.exists(tmp_path / "eq06_analytic.txt")

    def test_bad_jobs_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            run_all.main(["--jobs", "0", "--out", str(tmp_path)])
