"""Tests for the run_all regeneration CLI."""

import os

import pytest

from repro.experiments import run_all


class TestPlan:
    def test_plan_covers_every_results_artifact(self):
        names = {name for name, _ in run_all.experiment_plan(fast=True)}
        # Every headline figure has an entry.
        for expected in ("fig01_goodput_wlan", "fig03_contention",
                         "fig05b_rich_info", "fig09b_ideal_goodput",
                         "fig13_hybrid", "fig14_pantheon",
                         "ext_tcp_splitting"):
            assert expected in names

    def test_fast_plan_same_experiments(self):
        fast = {n for n, _ in run_all.experiment_plan(fast=True)}
        slow = {n for n, _ in run_all.experiment_plan(fast=False)}
        assert fast == slow


class TestCli:
    def test_only_filter_runs_single_experiment(self, tmp_path, capsys):
        rc = run_all.main(["--fast", "--only", "fig17a",
                           "--out", str(tmp_path)])
        assert rc == 0
        assert os.path.exists(tmp_path / "fig17a_vs_bandwidth.txt")
        out = capsys.readouterr().out
        assert "Regenerated 1 experiments" in out

    def test_unknown_filter_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            run_all.main(["--only", "nonexistent", "--out", str(tmp_path)])

    def test_analytic_experiments_run(self, tmp_path, capsys):
        rc = run_all.main(["--fast", "--only", "eq06_analytic",
                           "--out", str(tmp_path)])
        assert rc == 0
        content = (tmp_path / "eq06_analytic.txt").read_text()
        assert "threshold" in content
