"""State-growth hygiene: long-running connections must not leak
per-packet bookkeeping."""

from repro.netsim.packet import MSS

from conftest import build_wired_connection


class TestSenderStateBounded:
    def test_records_pruned_after_cum_ack(self, sim):
        conn, _ = build_wired_connection(sim, "tcp-tack", rate_bps=20e6,
                                         rtt_s=0.02)
        conn.start_bulk()
        sim.run(until=10.0)
        sender = conn.sender
        # Acked records are deleted; the dict holds roughly one
        # window's worth, not the whole history.
        sent = sender.stats.data_packets_sent
        assert sent > 5000
        assert len(sender.records) < 2000

    def test_pkt_map_does_not_grow_unbounded(self, sim):
        conn, _ = build_wired_connection(sim, "tcp-tack", rate_bps=20e6,
                                         rtt_s=0.02, data_loss=0.01)
        conn.start_bulk()
        sim.run(until=10.0)
        sender = conn.sender
        # Entries die with their records at cum-ack; the map tracks
        # the window, not total traffic.
        assert sender.stats.data_packets_sent > 5000
        assert len(sender.pkt_map) < 2000

    def test_governor_pruned_on_ack(self, sim):
        conn, _ = build_wired_connection(sim, "tcp-tack", rate_bps=10e6,
                                         rtt_s=0.05, data_loss=0.02)
        conn.start_transfer(500 * MSS)
        sim.run(until=30.0)
        assert conn.completed
        # All retransmitted ranges were eventually acked and removed.
        assert len(conn.sender.governor) == 0

    def test_retx_queue_drains(self, sim):
        conn, _ = build_wired_connection(sim, "tcp-tack", rate_bps=10e6,
                                         rtt_s=0.05, data_loss=0.05)
        conn.start_transfer(300 * MSS)
        sim.run(until=60.0)
        assert conn.completed
        assert len(conn.sender.retx_queue) == 0


class TestReceiverStateBounded:
    def test_interval_set_stays_small(self, sim):
        conn, _ = build_wired_connection(sim, "tcp-tack", rate_bps=20e6,
                                         rtt_s=0.02, data_loss=0.01)
        conn.start_bulk()
        sim.run(until=10.0)
        # With auto-drain, consumed ranges are removed; only unfilled
        # holes and the data above them remain.
        assert len(conn.receiver.intervals) < 100

    def test_gap_age_tracking_pruned(self, sim):
        conn, _ = build_wired_connection(sim, "tcp-tack", rate_bps=20e6,
                                         rtt_s=0.02, data_loss=0.02)
        conn.start_bulk()
        sim.run(until=10.0)
        assert len(conn.receiver._gap_first_seen) < 100


class TestEventQueueHygiene:
    def test_no_timer_accumulation(self, sim):
        """Pending events stay bounded during a steady flow (timers are
        rescheduled, not accumulated)."""
        conn, _ = build_wired_connection(sim, "tcp-tack", rate_bps=20e6,
                                         rtt_s=0.02)
        conn.start_bulk()
        sim.run(until=5.0)
        assert sim.pending() < 500

    def test_quiescent_after_transfer_and_close(self, sim):
        conn, _ = build_wired_connection(sim, "tcp-tack", rate_bps=20e6,
                                         rtt_s=0.02)
        conn.start_transfer(50 * MSS)
        sim.run(until=5.0)
        assert conn.completed
        conn.close()
        sim.run(until=6.0)
        fired_before = sim.events_fired
        sim.run(until=12.0)
        # A closed connection generates no event storm.
        assert sim.events_fired - fired_before < 20
