"""Unit tests for the IntervalSet used by reassembly and block lists."""

from repro.transport.intervals import IntervalSet


class TestAdd:
    def test_single_range(self):
        s = IntervalSet()
        assert s.add(0, 10) == 10
        assert s.ranges() == [(0, 10)]

    def test_disjoint_ranges_sorted(self):
        s = IntervalSet()
        s.add(20, 30)
        s.add(0, 10)
        assert s.ranges() == [(0, 10), (20, 30)]

    def test_merge_adjacent(self):
        s = IntervalSet([(0, 10)])
        s.add(10, 20)
        assert s.ranges() == [(0, 20)]

    def test_merge_overlapping(self):
        s = IntervalSet([(0, 10), (20, 30)])
        added = s.add(5, 25)
        assert s.ranges() == [(0, 30)]
        assert added == 10  # only [10,20) was new

    def test_duplicate_adds_nothing(self):
        s = IntervalSet([(0, 10)])
        assert s.add(2, 8) == 0
        assert s.ranges() == [(0, 10)]

    def test_empty_range_ignored(self):
        s = IntervalSet()
        assert s.add(5, 5) == 0
        assert not s

    def test_bridge_many(self):
        s = IntervalSet([(0, 1), (2, 3), (4, 5), (6, 7)])
        s.add(1, 6)
        assert s.ranges() == [(0, 7)]


class TestQueries:
    def test_contains(self):
        s = IntervalSet([(10, 20)])
        assert 10 in s
        assert 19 in s
        assert 20 not in s
        assert 9 not in s

    def test_contains_range(self):
        s = IntervalSet([(0, 100)])
        assert s.contains_range(0, 100)
        assert s.contains_range(50, 60)
        assert not s.contains_range(50, 101)
        assert s.contains_range(5, 5)  # empty range trivially present

    def test_covered(self):
        s = IntervalSet([(0, 10), (20, 25)])
        assert s.covered() == 15

    def test_first_missing(self):
        s = IntervalSet([(0, 10), (20, 30)])
        assert s.first_missing(0) == 10
        assert s.first_missing(10) == 10
        assert s.first_missing(25) == 30
        assert s.first_missing(50) == 50

    def test_max_end(self):
        assert IntervalSet().max_end() == 0
        assert IntervalSet([(5, 9)]).max_end() == 9

    def test_gaps(self):
        s = IntervalSet([(10, 20), (30, 40)])
        assert s.gaps(40) == [(0, 10), (20, 30)]
        assert s.gaps(50) == [(0, 10), (20, 30), (40, 50)]
        assert s.gaps(15) == [(0, 10)]

    def test_gaps_empty_set(self):
        assert IntervalSet().gaps(10) == [(0, 10)]


class TestRemoveBelow:
    def test_removes_whole_ranges(self):
        s = IntervalSet([(0, 10), (20, 30)])
        s.remove_below(15)
        assert s.ranges() == [(20, 30)]

    def test_truncates_partial(self):
        s = IntervalSet([(0, 10)])
        s.remove_below(4)
        assert s.ranges() == [(4, 10)]

    def test_noop_below_everything(self):
        s = IntervalSet([(5, 10)])
        s.remove_below(2)
        assert s.ranges() == [(5, 10)]


class TestReassemblyScenario:
    def test_out_of_order_delivery(self):
        """Simulate segments arriving out of order and check the
        cumulative point the receiver would advertise."""
        s = IntervalSet()
        mss = 1500
        arrival_order = [0, 2, 1, 5, 3, 4]
        cum_points = []
        for idx in arrival_order:
            s.add(idx * mss, (idx + 1) * mss)
            cum_points.append(s.first_missing(0))
        assert cum_points == [1500, 1500, 4500, 4500, 6000, 9000]
