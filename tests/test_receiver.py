"""Unit tests for the transport receiver."""

from repro.ack import PerPacketAck
from repro.netsim.packet import MSS, Packet, PacketType, make_data_packet
from repro.transport.receiver import TransportReceiver


class StubPort:
    def __init__(self):
        self.sent = []

    def send(self, packet):
        self.sent.append(packet)
        return True

    def connect(self, sink):
        pass


def make_rx(sim, policy=None, **kwargs):
    rx = TransportReceiver(sim, policy or PerPacketAck(), **kwargs)
    port = StubPort()
    rx.connect(port)
    return rx, port


def data(sim, idx, payload=MSS, pkt_seq=None):
    pkt = make_data_packet(idx * MSS, pkt_seq if pkt_seq is not None else idx + 1,
                           payload_len=payload)
    pkt.sent_at = sim.now()
    return pkt


class TestReassembly:
    def test_in_order_delivery(self, sim):
        rx, _ = make_rx(sim)
        delivered = []
        rx.on_deliver(lambda n, t: delivered.append(n))
        for i in range(3):
            rx.on_packet(data(sim, i))
        assert sum(delivered) == 3 * MSS
        assert rx.stats.bytes_delivered == 3 * MSS

    def test_out_of_order_held_then_released(self, sim):
        rx, _ = make_rx(sim)
        rx.on_packet(data(sim, 0))
        rx.on_packet(data(sim, 2))
        assert rx.stats.bytes_delivered == MSS
        assert rx.holb_blocked_bytes() == MSS
        rx.on_packet(data(sim, 1))
        assert rx.stats.bytes_delivered == 3 * MSS
        assert rx.holb_blocked_bytes() == 0

    def test_duplicate_counted_not_delivered_twice(self, sim):
        rx, _ = make_rx(sim)
        rx.on_packet(data(sim, 0))
        rx.on_packet(data(sim, 0, pkt_seq=99))
        assert rx.stats.duplicate_packets == 1
        assert rx.stats.bytes_delivered == MSS

    def test_peak_buffer_tracked(self, sim):
        rx, _ = make_rx(sim)
        rx.on_packet(data(sim, 5))
        rx.on_packet(data(sim, 6))
        assert rx.stats.peak_buffered_bytes == 2 * MSS


class TestSlowReader:
    def test_awnd_shrinks_without_reads(self, sim):
        rx, _ = make_rx(sim, rcv_buffer_bytes=10 * MSS, auto_drain=False)
        for i in range(4):
            rx.on_packet(data(sim, i))
        assert rx.awnd() == 6 * MSS
        assert rx.available_bytes() == 4 * MSS

    def test_read_restores_window(self, sim):
        rx, _ = make_rx(sim, rcv_buffer_bytes=10 * MSS, auto_drain=False)
        for i in range(4):
            rx.on_packet(data(sim, i))
        assert rx.read(2 * MSS) == 2 * MSS
        assert rx.awnd() == 8 * MSS

    def test_read_limited_to_in_order_data(self, sim):
        rx, _ = make_rx(sim, auto_drain=False)
        rx.on_packet(data(sim, 0))
        rx.on_packet(data(sim, 2))
        assert rx.read(10 * MSS) == MSS


class TestFeedbackConstruction:
    def test_sack_prefers_highest_blocks(self, sim):
        rx, _ = make_rx(sim)
        # holes everywhere: received 1,3,5,7,9
        for i in (1, 3, 5, 7, 9):
            rx.on_packet(data(sim, i))
        fb = rx.build_feedback(max_sack_blocks=2)
        assert fb.sack_blocks == [(7 * MSS, 8 * MSS), (9 * MSS, 10 * MSS)]

    def test_unacked_prefers_lowest_gaps(self, sim):
        rx, _ = make_rx(sim)
        for i in (1, 3, 5):
            rx.on_packet(data(sim, i))
        fb = rx.build_feedback(max_unacked_blocks=2)
        assert fb.unacked_blocks == [(0, MSS), (2 * MSS, 3 * MSS)]

    def test_awnd_in_feedback(self, sim):
        rx, _ = make_rx(sim, rcv_buffer_bytes=8 * MSS, auto_drain=False)
        rx.on_packet(data(sim, 0))
        fb = rx.build_feedback()
        assert fb.awnd == 7 * MSS

    def test_largest_pkt_seq_reported(self, sim):
        rx, _ = make_rx(sim)
        rx.on_packet(data(sim, 0, pkt_seq=41))
        fb = rx.build_feedback()
        assert fb.largest_pkt_seq == 41

    def test_timing_reference_consumed_once(self, sim):
        rx, _ = make_rx(sim)
        rx.on_packet(data(sim, 0))
        fb1 = rx.build_feedback(include_timing=True)
        fb2 = rx.build_feedback(include_timing=True)
        assert fb1.echo_departure_ts is not None
        assert fb2.echo_departure_ts is None

    def test_syn_answered_with_syn_ack(self, sim):
        rx, port = make_rx(sim)
        syn = Packet(PacketType.SYN, size=64)
        syn.sent_at = 0.0
        rx.on_packet(syn)
        assert port.sent[0].kind is PacketType.SYN_ACK

    def test_rtt_min_synced_from_data(self, sim):
        rx, _ = make_rx(sim)
        pkt = data(sim, 0)
        pkt.meta["rtt_min"] = 0.123
        rx.on_packet(pkt)
        assert rx.peer_rtt_min == 0.123


class TestFeedbackWire:
    def test_block_cost_charged(self, sim):
        from repro.transport.feedback import (
            AckFeedback,
            feedback_wire_bytes,
        )
        small = AckFeedback(cum_ack=0, awnd=0)
        assert feedback_wire_bytes(small) == 64
        big = AckFeedback(
            cum_ack=0,
            awnd=0,
            sack_blocks=[(i, i + 1) for i in range(10)],
        )
        assert feedback_wire_bytes(big) == 64 + 7 * 8

    def test_wire_size_capped_at_mtu(self, sim):
        from repro.transport.feedback import (
            AckFeedback,
            feedback_wire_bytes,
        )
        huge = AckFeedback(
            cum_ack=0,
            awnd=0,
            unacked_blocks=[(i, i + 1) for i in range(1000)],
        )
        assert feedback_wire_bytes(huge) == 1518
