"""Tests for the TCP-splitting proxy extension (paper S7)."""

from repro.app.split_proxy import SplitTransfer
from repro.netsim.packet import MSS
from repro.netsim.paths import wired_path, wlan_path


def build_split(sim, wan_rate_bps=50e6, wan_rtt_s=0.1, loss=0.0, **kwargs):
    wan = wired_path(sim, wan_rate_bps, wan_rtt_s, data_loss=loss, ack_loss=loss)
    wlan = wlan_path(sim, "802.11g", extra_rtt_s=0.004)
    return SplitTransfer(sim, wan, wlan, wan_rtt_hint=wan_rtt_s,
                         wlan_rtt_hint=0.01, **kwargs)


class TestSplitTransfer:
    def test_fixed_transfer_reaches_client(self, sim):
        split = build_split(sim)
        split.start_transfer(200 * MSS)
        sim.run(until=15.0)
        assert split.completed
        assert split.delivered_bytes == 200 * MSS

    def test_bulk_flows_end_to_end(self, sim):
        split = build_split(sim)
        split.start_bulk()
        sim.run(until=8.0)
        # The 802.11g last hop (~24 Mbps) is the bottleneck.
        goodput = split.delivered_bytes * 8 / 8.0
        assert goodput > 10e6

    def test_backpressure_bounds_proxy_memory(self, sim):
        """A fast WAN into a slow WLAN must not accumulate unbounded
        proxy state."""
        split = build_split(sim, wan_rate_bps=200e6, wan_rtt_s=0.02)
        split.start_bulk()
        sim.run(until=8.0)
        held = (split.wlan_conn.sender.pending_bytes
                + split.wan_conn.receiver.buffered_bytes())
        assert held <= 2 * split.proxy_buffer_bytes

    def test_reliability_gap_exists_for_bulk(self, sim):
        """The server's cum-ack runs ahead of client delivery — the
        semantic cost of splitting the connection."""
        split = build_split(sim, wan_rate_bps=200e6, wan_rtt_s=0.02)
        split.start_bulk()
        sim.run(until=5.0)
        assert split.proxy_held_bytes > 0

    def test_survives_wan_loss(self, sim):
        split = build_split(sim, loss=0.02)
        split.start_transfer(150 * MSS)
        sim.run(until=30.0)
        assert split.completed

    def test_total_acks_counts_both_segments(self, sim):
        split = build_split(sim)
        split.start_transfer(50 * MSS)
        sim.run(until=10.0)
        assert split.total_acks() == (split.wan_conn.ack_count()
                                      + split.wlan_conn.ack_count())
        assert split.total_acks() > 0
