"""Tests for the Minstrel-lite WLAN rate adaptation extension."""

import pytest

from repro.netsim.packet import make_data_packet
from repro.wlan.medium import WirelessMedium
from repro.wlan.phy import get_profile
from repro.wlan.station import Station, wireless_pair


class TestRateLadder:
    def test_disabled_by_default(self, sim):
        medium = WirelessMedium(sim, get_profile("802.11n"))
        sta = Station(medium, "sta")
        assert sta.current_rate_bps == sta.current_rate_bps  # stable accessor
        assert sta.current_rate_bps() == 300e6
        sta.note_tx_outcome(ok=False)
        sta.note_tx_outcome(ok=False)
        assert sta.current_rate_bps() == 300e6  # no adaptation

    def test_steps_down_after_two_failures(self, sim):
        medium = WirelessMedium(sim, get_profile("802.11n"))
        sta = Station(medium, "sta", rate_adaptation=True)
        sta.note_tx_outcome(ok=False)
        sta.note_tx_outcome(ok=False)
        assert sta.current_rate_bps() == pytest.approx(0.75 * 300e6)

    def test_steps_back_up_after_ten_successes(self, sim):
        medium = WirelessMedium(sim, get_profile("802.11n"))
        sta = Station(medium, "sta", rate_adaptation=True)
        sta.note_tx_outcome(ok=False)
        sta.note_tx_outcome(ok=False)
        for _ in range(10):
            sta.note_tx_outcome(ok=True)
        assert sta.current_rate_bps() == pytest.approx(300e6)

    def test_bottom_of_ladder(self, sim):
        medium = WirelessMedium(sim, get_profile("802.11n"))
        sta = Station(medium, "sta", rate_adaptation=True)
        for _ in range(20):
            sta.note_tx_outcome(ok=False)
        assert sta.current_rate_bps() == pytest.approx(0.25 * 300e6)

    def test_rate_table_descending(self):
        table = get_profile("802.11ac").rate_table()
        assert table == sorted(table, reverse=True)


class TestAdaptationUnderNoise:
    def test_noisy_channel_lowers_goodput_beyond_retries(self, sim):
        """With heavy PHY noise, rate adaptation steps the MCS down —
        goodput falls below the fixed-rate equivalent (the amplifier
        the paper's testbed exhibits in Fig. 3)."""
        results = {}
        for adapt in (False, True):
            from repro.netsim.engine import Simulator
            local = Simulator(seed=5)
            medium = WirelessMedium(local, get_profile("802.11g"),
                                    per_mpdu_error_rate=0.25)
            a = Station(medium, "a", queue_frames=4096, rate_adaptation=adapt)
            b = Station(medium, "b")
            a.set_peer(b)
            b.set_peer(a)
            medium.register(a)
            medium.register(b)
            got = [0]
            b.connect(lambda p: got.__setitem__(0, got[0] + p.payload_len))
            for i in range(3000):
                a.send(make_data_packet(i * 1500, i + 1))
            local.run(until=1.0)
            results[adapt] = got[0]
        assert results[True] < results[False]

    def test_clean_channel_stays_at_top_rate(self, sim):
        medium = WirelessMedium(sim, get_profile("802.11n"))
        ap, sta = wireless_pair(medium)
        ap.rate_adaptation = True
        sta.connect(lambda p: None)
        for i in range(200):
            ap.send(make_data_packet(i * 1500, i + 1))
        sim.run(until=0.5)
        assert ap.current_rate_bps() == pytest.approx(300e6)
