"""Tests for the multi-client AP mode (per-RA queues, peer maps)."""

import pytest

from repro.core.flavors import make_connection
from repro.netsim.packet import MSS, make_data_packet
from repro.netsim.paths import multi_client_wlan
from repro.wlan.medium import WirelessMedium
from repro.wlan.phy import get_profile
from repro.wlan.station import Station


class TestPeerMap:
    def test_routes_by_flow_id(self, sim):
        medium = WirelessMedium(sim, get_profile("802.11g"))
        ap = Station(medium, "ap")
        c0 = Station(medium, "c0")
        c1 = Station(medium, "c1")
        for s in (ap, c0, c1):
            medium.register(s)
        ap.set_peer_map({0: c0, 1: c1})
        got0, got1 = [], []
        c0.connect(got0.append)
        c1.connect(got1.append)
        ap.send(make_data_packet(0, 1, flow_id=0))
        ap.send(make_data_packet(0, 2, flow_id=1))
        sim.run(until=0.1)
        assert len(got0) == 1 and len(got1) == 1

    def test_single_ra_ampdu(self, sim):
        """Frames for different clients never share one A-MPDU."""
        medium = WirelessMedium(sim, get_profile("802.11n"))
        ap = Station(medium, "ap")
        c0 = Station(medium, "c0")
        c1 = Station(medium, "c1")
        for s in (ap, c0, c1):
            medium.register(s)
        ap.set_peer_map({0: c0, 1: c1})
        arrivals0, arrivals1 = [], []
        c0.connect(lambda p: arrivals0.append(sim.now()))
        c1.connect(lambda p: arrivals1.append(sim.now()))
        for i in range(6):
            ap.send(make_data_packet(i * MSS, i + 1, flow_id=i % 2))
        sim.run(until=0.1)
        # Same-instant arrivals belong to one PPDU; flows must not mix.
        assert not (set(arrivals0) & set(arrivals1))

    def test_per_dest_queues_preserve_aggregation(self, sim):
        medium = WirelessMedium(sim, get_profile("802.11n"))
        ap = Station(medium, "ap", queue_frames=4096)
        clients = [Station(medium, f"c{i}") for i in range(3)]
        medium.register(ap)
        for c in clients:
            medium.register(c)
            c.connect(lambda p: None)
        ap.set_peer_map({i: c for i, c in enumerate(clients)})
        for i in range(300):
            ap.send(make_data_packet(i * MSS, i + 1, flow_id=i % 3))
        sim.run(until=0.2)
        # Aggregation depth must stay high despite interleaved flows.
        assert ap.frames_sent / ap.txops_won > 8


class TestMultiClientPaths:
    def test_validation(self, sim):
        with pytest.raises(ValueError):
            multi_client_wlan(sim, 0)

    def test_two_clients_full_transfers(self, sim):
        handles = multi_client_wlan(sim, 2, "802.11g")
        conns = []
        for i, handle in enumerate(handles):
            conn = make_connection(sim, "tcp-tack", flow_id=i,
                                   initial_rtt_s=0.01)
            conn.wire(handle.forward, handle.reverse)
            conns.append(conn)
        for conn in conns:
            conn.start_transfer(100 * MSS)
        sim.run(until=10.0)
        for conn in conns:
            assert conn.completed
            assert conn.receiver.stats.bytes_delivered == 100 * MSS

    def test_extra_rtt_applies_per_flow(self, sim):
        handles = multi_client_wlan(sim, 2, "802.11g", extra_rtt_s=0.1)
        conn = make_connection(sim, "tcp-tack", flow_id=0, initial_rtt_s=0.1)
        conn.wire(handles[0].forward, handles[0].reverse)
        conn.start_transfer(5 * MSS)
        sim.run(until=5.0)
        assert conn.completed
        # Handshake RTT ~ 100 ms + medium time.
        assert conn.sender.rtt.srtt > 0.09

    def test_shared_medium_object(self, sim):
        handles = multi_client_wlan(sim, 3)
        assert len({id(h.medium) for h in handles}) == 1
