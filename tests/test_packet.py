"""Unit tests for the packet model."""

import pytest

from repro.netsim.packet import (
    ACK_PACKET_SIZE,
    DATA_PACKET_SIZE,
    HEADER_SIZE,
    MSS,
    Packet,
    PacketType,
    make_ack_packet,
    make_data_packet,
)


class TestPacketBasics:
    def test_data_packet_size_convention(self):
        pkt = make_data_packet(seq=0, pkt_seq=1)
        assert pkt.size == DATA_PACKET_SIZE
        assert pkt.payload_len == MSS
        assert HEADER_SIZE == DATA_PACKET_SIZE - MSS

    def test_end_seq(self):
        pkt = make_data_packet(seq=3000, pkt_seq=3)
        assert pkt.end_seq() == 3000 + MSS

    def test_end_seq_requires_seq(self):
        with pytest.raises(ValueError):
            make_ack_packet().end_seq()

    def test_uid_unique(self):
        a = make_data_packet(0, 1)
        b = make_data_packet(0, 2)
        assert a.uid != b.uid

    def test_positive_size_enforced(self):
        with pytest.raises(ValueError):
            Packet(PacketType.DATA, size=0)

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            Packet(PacketType.DATA, size=100, payload_len=-1)


class TestAckPackets:
    def test_base_ack_size(self):
        assert make_ack_packet().size == ACK_PACKET_SIZE

    def test_extra_bytes_grow_ack(self):
        pkt = make_ack_packet(extra_bytes=100)
        assert pkt.size == ACK_PACKET_SIZE + 100

    def test_ack_capped_at_mtu(self):
        pkt = make_ack_packet(extra_bytes=10_000)
        assert pkt.size == DATA_PACKET_SIZE

    def test_negative_extra_rejected(self):
        with pytest.raises(ValueError):
            make_ack_packet(extra_bytes=-1)

    @pytest.mark.parametrize(
        "kind", [PacketType.ACK, PacketType.TACK, PacketType.IACK]
    )
    def test_is_ack_like(self, kind):
        assert make_ack_packet(kind=kind).is_ack_like()

    def test_data_not_ack_like(self):
        assert not make_data_packet(0, 1).is_ack_like()
        assert make_data_packet(0, 1).is_data()


class TestRetransmitClone:
    def test_clone_keeps_seq_updates_pkt_seq(self):
        original = make_data_packet(seq=1500, pkt_seq=2)
        clone = original.copy_for_retransmit(new_pkt_seq=9)
        assert clone.seq == original.seq
        assert clone.payload_len == original.payload_len
        assert clone.pkt_seq == 9
        assert original.pkt_seq == 2

    def test_clone_copies_meta_shallow(self):
        original = make_data_packet(seq=0, pkt_seq=1)
        original.meta["k"] = "v"
        clone = original.copy_for_retransmit(5)
        assert clone.meta["k"] == "v"
        clone.meta["k"] = "other"
        assert original.meta["k"] == "v"
