"""Unit tests for the transport sender over a controlled pipe."""

import pytest

from repro.cc import BBR, NewReno
from repro.netsim.packet import MSS, Packet, PacketType
from repro.netsim.pipe import Pipe
from repro.transport.feedback import AckFeedback, make_feedback_packet
from repro.transport.sender import TransportSender


class StubPort:
    """Captures sent packets without delivering them anywhere."""

    def __init__(self):
        self.sent = []

    def send(self, packet):
        self.sent.append(packet)
        return True

    def connect(self, sink):
        pass


def established_sender(sim, cc=None, **kwargs):
    sender = TransportSender(sim, cc or NewReno(), **kwargs)
    port = StubPort()
    sender.connect(port)
    sender.start()
    syn_ack = Packet(PacketType.SYN_ACK, size=64)
    syn_ack.meta["syn_sent_at"] = 0.0
    sim.call_in(0.01, lambda: sender.on_packet(syn_ack))
    sim.run(until=0.02)
    port.sent.clear()
    return sender, port


def ack_for(sender, cum_ack, kind=PacketType.ACK, **fields):
    fb = AckFeedback(cum_ack=cum_ack, awnd=fields.pop("awnd", 1 << 30), **fields)
    pkt = make_feedback_packet(kind, fb)
    sender.on_packet(pkt)
    return fb


class TestHandshake:
    def test_syn_establishes_and_samples_rtt(self, sim):
        sender, _ = established_sender(sim)
        assert sender.established
        assert sender.rtt.srtt == pytest.approx(0.01, abs=1e-3)

    def test_syn_retry_on_loss(self, sim):
        sender = TransportSender(sim, NewReno())
        port = StubPort()
        sender.connect(port)
        sender.start()
        sim.run(until=3.0)
        syns = [p for p in port.sent if p.kind is PacketType.SYN]
        assert len(syns) >= 2  # original plus at least one retry


class TestSending:
    def test_respects_cwnd(self, sim):
        sender, port = established_sender(sim)
        sender.set_unlimited()
        sim.run(until=0.1)
        data = [p for p in port.sent if p.kind is PacketType.DATA]
        assert len(data) * MSS <= sender.cc.cwnd_bytes() + MSS

    def test_pkt_seq_monotone(self, sim):
        sender, port = established_sender(sim)
        sender.set_unlimited()
        sim.run(until=0.1)
        seqs = [p.pkt_seq for p in port.sent if p.kind is PacketType.DATA]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_finite_write(self, sim):
        sender, port = established_sender(sim)
        sender.set_total(5 * MSS)
        sim.run(until=0.2)
        data = [p for p in port.sent if p.kind is PacketType.DATA]
        assert sum(p.payload_len for p in data) == 5 * MSS

    def test_partial_final_segment(self, sim):
        sender, port = established_sender(sim)
        sender.set_total(MSS + 100)
        sim.run(until=0.2)
        data = [p for p in port.sent if p.kind is PacketType.DATA]
        assert [p.payload_len for p in data] == [MSS, 100]

    def test_zero_awnd_blocks(self, sim):
        sender, port = established_sender(sim)
        ack_for(sender, 0, awnd=0)
        sender.set_unlimited()
        sim.run(until=0.15)  # below the persist timeout
        assert not [p for p in port.sent if p.kind is PacketType.DATA]

    def test_persist_probe_fires(self, sim):
        sender, port = established_sender(sim)
        ack_for(sender, 0, awnd=0)
        sender.set_unlimited()
        sim.run(until=1.0)
        # The persist timer must eventually probe the zero window.
        assert [p for p in port.sent if p.kind is PacketType.DATA]

    def test_pacing_spaces_packets(self, sim):
        sender, port = established_sender(sim)
        sender.pacer.set_rate(1.2e6)  # ~10 pkt/s at full size
        sender.cc.pacing_rate_bps = lambda: 1.2e6
        sender.set_unlimited()
        sim.run(until=0.5)
        times = [p.sent_at for p in port.sent if p.kind is PacketType.DATA]
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert min(gaps) >= 1518 * 8 / 1.2e6 * 0.99


class TestCumAck:
    def test_cum_ack_releases_window(self, sim):
        sender, port = established_sender(sim)
        sender.set_unlimited()
        sim.run(until=0.1)
        sent_before = len(port.sent)
        ack_for(sender, 5 * MSS)
        sim.run(until=0.2)
        assert len(port.sent) > sent_before
        assert sender.cum_acked == 5 * MSS

    def test_in_flight_decreases(self, sim):
        sender, port = established_sender(sim)
        sender.set_total(5 * MSS)
        sim.run(until=0.1)
        assert sender.in_flight == 5 * MSS
        ack_for(sender, 2 * MSS)
        assert sender.in_flight == 3 * MSS

    def test_completion_stamped(self, sim):
        sender, port = established_sender(sim)
        sender.set_total(3 * MSS)
        sim.run(until=0.1)
        assert sender.completed_at is None
        ack_for(sender, 3 * MSS)
        assert sender.completed_at == pytest.approx(sim.now())

    def test_stale_cum_ack_ignored(self, sim):
        sender, port = established_sender(sim)
        sender.set_unlimited()
        sim.run(until=0.1)
        ack_for(sender, 5 * MSS)
        ack_for(sender, 2 * MSS)  # reordered feedback
        assert sender.cum_acked == 5 * MSS


class TestDupAckRecovery:
    def test_three_dupacks_fast_retransmit(self, sim):
        sender, port = established_sender(sim)
        sender.set_unlimited()
        sim.run(until=0.1)
        port.sent.clear()
        for _ in range(3):
            ack_for(sender, 0, sack_blocks=[(MSS, 2 * MSS)])
        sim.run(until=0.15)
        retx = [p for p in port.sent if p.kind is PacketType.DATA and p.seq == 0]
        assert retx
        assert sender.stats.fast_retransmits == 1

    def test_retransmission_gets_new_pkt_seq(self, sim):
        sender, port = established_sender(sim)
        sender.set_unlimited()
        sim.run(until=0.1)
        original = next(p for p in port.sent if p.seq == 0)
        port.sent.clear()
        for _ in range(3):
            ack_for(sender, 0, sack_blocks=[(MSS, 2 * MSS)])
        sim.run(until=0.15)
        retx = next(p for p in port.sent if p.seq == 0)
        assert retx.pkt_seq > original.pkt_seq

    def test_no_spurious_fast_retx_in_recovery(self, sim):
        sender, port = established_sender(sim)
        sender.set_unlimited()
        sim.run(until=0.1)
        for _ in range(6):
            ack_for(sender, 0, sack_blocks=[(MSS, 2 * MSS)])
        assert sender.stats.fast_retransmits == 1


class TestReceiverDrivenPull:
    def make_tack_sender(self, sim):
        sender, port = None, None
        s = TransportSender(sim, BBR(initial_rtt_s=0.01), receiver_driven=True,
                            use_receiver_rate=True)
        p = StubPort()
        s.connect(p)
        s.start()
        syn_ack = Packet(PacketType.SYN_ACK, size=64)
        syn_ack.meta["syn_sent_at"] = 0.0
        sim.call_in(0.01, lambda: s.on_packet(syn_ack))
        sim.run(until=0.02)
        p.sent.clear()
        return s, p

    def test_pull_range_retransmits(self, sim):
        sender, port = self.make_tack_sender(sim)
        sender.set_unlimited()
        sim.run(until=0.1)
        lost = [p for p in port.sent if p.pkt_seq == 2][0]
        port.sent.clear()
        ack_for(sender, MSS, kind=PacketType.IACK, pull_pkt_range=(1, 3))
        sim.run(until=0.12)
        retx = [p for p in port.sent if p.seq == lost.seq]
        assert len(retx) == 1
        assert retx[0].pkt_seq > lost.pkt_seq

    def test_stale_pull_for_superseded_pkt_seq_ignored(self, sim):
        sender, port = self.make_tack_sender(sim)
        sender.set_unlimited()
        sim.run(until=0.1)
        port.sent.clear()
        ack_for(sender, MSS, kind=PacketType.IACK, pull_pkt_range=(1, 3))
        sim.run(until=0.12)
        n_after_first = sender.stats.retransmissions
        # Same pull again: pkt_seq 2 now superseded, nothing happens.
        ack_for(sender, MSS, kind=PacketType.IACK, pull_pkt_range=(1, 3))
        sim.run(until=0.14)
        assert sender.stats.retransmissions == n_after_first

    def test_unacked_block_governed_once_per_rtt(self, sim):
        sender, port = self.make_tack_sender(sim)
        sender.rtt.on_sample(0.1)
        sender.set_unlimited()
        sim.run(until=0.1)
        port.sent.clear()
        for _ in range(4):
            ack_for(sender, MSS, kind=PacketType.TACK,
                    unacked_blocks=[(MSS, 2 * MSS)])
        sim.run(until=0.15)
        retx = [p for p in port.sent if p.seq == MSS]
        assert len(retx) == 1

    def test_tack_timing_updates_rtt_min(self, sim):
        sender, port = self.make_tack_sender(sim)
        sender.set_unlimited()
        sim.run(until=0.1)
        now = sim.now()
        # The echoed reference must be a departure the sender really
        # stamped (the guard's echo_ts rule), so echo a captured one.
        ts = port.sent[0].sent_at
        ack_for(sender, MSS, kind=PacketType.TACK,
                echo_departure_ts=ts, tack_delay=now - ts - 0.03)
        assert sender.rtt_min_est.last_sample == pytest.approx(0.03)

    def test_receiver_rate_feeds_cc(self, sim):
        sender, port = self.make_tack_sender(sim)
        sender.set_unlimited()
        sim.run(until=0.1)
        ack_for(sender, MSS, kind=PacketType.TACK, delivery_rate_bps=42e6)
        assert sender.cc.bw_estimate() == pytest.approx(42e6)


class TestRto:
    def test_rto_fires_and_retransmits(self, sim):
        sender, port = established_sender(sim)
        sender.set_total(2 * MSS)
        sim.run(until=0.05)
        port.sent.clear()
        sim.run(until=3.0)  # no feedback at all
        assert sender.stats.rtos >= 1
        assert any(p.seq == 0 for p in port.sent)

    def test_rto_backoff_doubles(self, sim):
        sender, port = established_sender(sim)
        sender.set_total(MSS)
        first_rto = sender.rtt.rto()
        sim.run(until=0.05 + first_rto + 0.01)
        assert sender.rtt.rto() >= 1.9 * first_rto


class TestEndToEndPipe:
    def test_data_flows_through_pipe(self, sim):
        """Sender against a real receiver via lossless pipes."""
        from repro.ack import PerPacketAck
        from repro.transport.receiver import TransportReceiver

        sender = TransportSender(sim, NewReno())
        receiver = TransportReceiver(sim, PerPacketAck())
        fwd = Pipe(sim, delay_s=0.01, sink=receiver.on_packet)
        rev = Pipe(sim, delay_s=0.01, sink=sender.on_packet)
        sender.connect(fwd)
        receiver.connect(rev)
        sender.set_total(100 * MSS)
        sender.start()
        sim.run(until=5.0)
        assert receiver.stats.bytes_delivered == 100 * MSS
        assert sender.completed_at is not None
