"""Tests for the ``python -m repro.telemetry`` trace CLI."""

import json

import pytest

from repro.telemetry import TraceEvent, read_trace, write_trace
from repro.telemetry.cli import main


def _canned_events(retx=0, tacks=10):
    """A small synthetic single-flow trace."""
    events = []
    t = 0.0
    for i in range(tacks):
        t += 0.01
        events.append(TraceEvent(t, "transport", "send", 0,
                                 {"seq": i * 1500, "pkt_seq": i,
                                  "length": 1500, "in_flight": 3000}))
        t += 0.02
        events.append(TraceEvent(t, "transport", "deliver", 0,
                                 {"nbytes": 1500}))
        events.append(TraceEvent(t, "ack", "tack", 0,
                                 {"reason": "periodic", "cum_ack": (i + 1) * 1500}))
        events.append(TraceEvent(t, "timing", "rtt_sample", 0,
                                 {"rtt_s": 0.02, "srtt_s": 0.02,
                                  "rtt_min_s": 0.02}))
    for i in range(retx):
        t += 0.01
        events.append(TraceEvent(t, "transport", "retx", 0,
                                 {"seq": i * 1500, "pkt_seq": 100 + i,
                                  "length": 1500, "in_flight": 3000}))
        events.append(TraceEvent(t, "ack", "iack", 0, {"reason": "loss"}))
    return events


@pytest.fixture
def trace(tmp_path):
    path = str(tmp_path / "a.jsonl")
    write_trace(path, _canned_events(), meta={"seed": 1})
    return path


class TestSummarize:
    def test_text_output(self, trace, capsys):
        assert main(["summarize", trace]) == 0
        out = capsys.readouterr().out
        assert "flow 0" in out
        assert "tack=10" in out
        assert "periodic=10" in out

    def test_json_output(self, trace, capsys):
        assert main(["summarize", trace, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == 1
        flow = doc["flows"]["0"]
        assert flow["acks"]["by_kind"] == {"tack": 10}
        assert flow["acks"]["reasons"] == {"periodic": 10}
        assert flow["data"]["sent"] == 10
        assert flow["data"]["delivered_bytes"] == 15000
        assert flow["timing"]["rtt_min_s"] == 0.02

    def test_window_restricts_and_sets_duration(self, trace, capsys):
        assert main(["summarize", trace, "--json",
                     "--start", "0.0", "--end", "0.15"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["window"]["duration_s"] == pytest.approx(0.15)
        assert doc["flows"]["0"]["acks"]["total"] < 10
        # hz normalizes by the requested window, not the event span
        assert doc["flows"]["0"]["acks"]["hz"] == pytest.approx(
            doc["flows"]["0"]["acks"]["total"] / 0.15)

    def test_category_bytes_accounting(self, trace, capsys):
        assert main(["summarize", trace, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        cb = doc["category_bytes"]
        assert set(cb) == set(doc["categories"])
        # wire cost = compact-JSON line length incl. the newline, the
        # exact bytes a JsonlSink would have written for the event
        _, events = read_trace(trace)
        expect = {}
        for e in events:
            wire = len(json.dumps(e.to_dict(), separators=(",", ":"))) + 1
            expect[e.category] = expect.get(e.category, 0) + wire
        assert cb == expect

    def test_category_table_in_text_output(self, trace, capsys):
        assert main(["summarize", trace]) == 0
        out = capsys.readouterr().out
        assert "byte%" in out
        for cat in ("ack", "timing", "transport"):
            assert cat in out

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["summarize", str(tmp_path / "nope.jsonl")]) == 2
        assert "no such trace" in capsys.readouterr().err

    def test_invalid_trace_exits_2(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.jsonl"
        bogus.write_text("not json\n")
        assert main(["summarize", str(bogus)]) == 2

    def test_usage_error_exits_2(self, capsys):
        assert main(["summarize"]) == 2  # missing positional
        assert main(["no-such-command"]) == 2


class TestFilter:
    def test_filter_by_category(self, trace, tmp_path, capsys):
        out = str(tmp_path / "acks.jsonl")
        assert main(["filter", trace, "-o", out, "--category", "ack"]) == 0
        header, events = read_trace(out)
        assert header["meta"]["filtered_from"] == trace
        assert header["meta"]["seed"] == 1  # original meta preserved
        assert len(events) == 10
        assert all(e.category == "ack" for e in events)

    def test_filter_by_window(self, trace, tmp_path):
        out = str(tmp_path / "w.jsonl")
        assert main(["filter", trace, "-o", out,
                     "--start", "0.0", "--end", "0.1"]) == 0
        _, events = read_trace(out)
        assert events
        assert all(e.time <= 0.1 for e in events)

    def test_filtered_trace_summarizes(self, trace, tmp_path, capsys):
        out = str(tmp_path / "f.jsonl")
        main(["filter", trace, "-o", out, "--category", "ack,timing"])
        capsys.readouterr()
        assert main(["summarize", out, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert set(doc["categories"]) == {"ack", "timing"}


class TestDiff:
    def test_identical_traces_exit_0(self, trace, tmp_path, capsys):
        other = str(tmp_path / "b.jsonl")
        write_trace(other, _canned_events())
        assert main(["diff", trace, other]) == 0
        assert "identical" in capsys.readouterr().out

    def test_different_traces_exit_1(self, trace, tmp_path, capsys):
        other = str(tmp_path / "b.jsonl")
        write_trace(other, _canned_events(retx=3))
        assert main(["diff", trace, other]) == 1
        out = capsys.readouterr().out
        assert "retx" in out

    def test_json_diff_lists_changes(self, trace, tmp_path, capsys):
        other = str(tmp_path / "b.jsonl")
        write_trace(other, _canned_events(retx=3))
        assert main(["diff", trace, other, "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["identical"] is False
        keys = {c["key"] for c in doc["changes"]}
        assert "flow.0.retx" in keys
        assert "flow.0.ack_reason.loss" in keys
        assert len(doc["retx_timelines"]["b"]) == 3
        assert doc["retx_timelines"]["a"] == []

    def test_missing_operand_exits_2(self, trace):
        assert main(["diff", trace]) == 2

    def test_empty_trace_exits_2(self, trace, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["diff", trace, str(empty)]) == 2
        assert "empty file" in capsys.readouterr().err
        # order must not matter: empty operand first fails the same way
        assert main(["diff", str(empty), trace]) == 2

    def test_mismatched_schema_header_exits_2(self, trace, tmp_path,
                                              capsys):
        bogus = tmp_path / "bogus.jsonl"
        bogus.write_text('{"schema": "not-a-trace", "version": 1}\n')
        assert main(["diff", trace, str(bogus)]) == 2
        assert "header" in capsys.readouterr().err

    def test_header_only_traces_are_identical(self, tmp_path, capsys):
        """Zero events is a valid trace; two of them diff clean."""
        a = str(tmp_path / "a.jsonl")
        b = str(tmp_path / "b.jsonl")
        write_trace(a, [])
        write_trace(b, [])
        assert main(["diff", a, b]) == 0
        assert "identical" in capsys.readouterr().out

    def test_self_diff_exits_0(self, trace, capsys):
        """A trace diffed against itself is identical by construction."""
        assert main(["diff", trace, trace]) == 0
        assert "identical" in capsys.readouterr().out
