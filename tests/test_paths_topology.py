"""Unit tests for topology composition (paths, chains, demux, node)."""

import pytest

from repro.core.flavors import make_connection
from repro.netsim.demux import FlowDemux, share_path
from repro.netsim.emulator import EmulatedPath, PathConfig
from repro.netsim.node import Forwarder
from repro.netsim.packet import make_ack_packet, make_data_packet
from repro.netsim.paths import (
    ChainPort,
    WirelessHop,
    hybrid_path,
    wired_path,
    wlan_path,
)
from repro.netsim.pipe import Pipe


class TestChainPort:
    def test_two_stage_chain_delivers(self, sim):
        got = []
        chain = ChainPort(Pipe(sim, 0.01), Pipe(sim, 0.02))
        chain.connect(lambda p: got.append(sim.now()))
        chain.send(make_ack_packet())
        sim.run()
        assert got == [pytest.approx(0.03)]

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            ChainPort()


class TestWirelessHop:
    def test_hop_routes_tx_to_rx(self, sim):
        handle = wlan_path(sim, "802.11g")
        ap, sta = handle.stations
        hop = WirelessHop(ap, sta)
        got = []
        hop.connect(got.append)
        hop.send(make_data_packet(0, 1))
        sim.run(until=0.1)
        assert len(got) == 1


class TestWiredPath:
    def test_default_queue_sized_to_bdp(self, sim):
        handle = wired_path(sim, 80e6, 0.1)
        assert handle.wan.forward.queue.capacity_bytes == int(80e6 * 0.1 / 8)

    def test_loss_parameters_applied(self, sim):
        handle = wired_path(sim, 1e9, 0.01, data_loss=1.0)
        got = []
        handle.forward.connect(got.append)
        handle.forward.send(make_data_packet(0, 1))
        sim.run()
        assert got == []


class TestWlanPath:
    def test_extra_rtt_adds_latency(self, sim):
        handle = wlan_path(sim, "802.11g", extra_rtt_s=0.1)
        got = []
        handle.forward.connect(lambda p: got.append(sim.now()))
        handle.forward.send(make_data_packet(0, 1))
        sim.run(until=1.0)
        assert got[0] > 0.05  # one-way pipe delay dominates

    def test_medium_exposed(self, sim):
        handle = wlan_path(sim, "802.11n")
        assert handle.medium is not None
        assert handle.stations is not None


class TestHybridPath:
    def test_end_to_end_latency_includes_wan(self, sim):
        handle = hybrid_path(sim, "802.11g", wan_rtt_s=0.2)
        got = []
        handle.forward.connect(lambda p: got.append(sim.now()))
        handle.forward.send(make_data_packet(0, 1))
        sim.run(until=1.0)
        assert got[0] > 0.1

    def test_reverse_direction_works(self, sim):
        handle = hybrid_path(sim, "802.11g", wan_rtt_s=0.02)
        got = []
        handle.reverse.connect(lambda p: got.append(sim.now()))
        handle.reverse.send(make_ack_packet())
        sim.run(until=1.0)
        assert len(got) == 1


class TestForwarder:
    def test_bidirectional_forwarding(self, sim):
        fwd = Forwarder()
        a_out, b_out = [], []

        class _Port:
            def __init__(self, store):
                self.store = store

            def send(self, p):
                self.store.append(p)
                return True

            def connect(self, sink):
                pass

        fwd.attach_a(_Port(a_out))
        fwd.attach_b(_Port(b_out))
        fwd.from_a(make_data_packet(0, 1))
        fwd.from_b(make_ack_packet())
        assert len(b_out) == 1 and len(a_out) == 1
        assert fwd.forwarded_a_to_b == 1
        assert fwd.forwarded_b_to_a == 1

    def test_unattached_counts_drop(self):
        fwd = Forwarder()
        fwd.from_a(make_data_packet(0, 1))
        assert fwd.dropped == 1


class TestDemux:
    def test_routes_by_flow_id(self, sim):
        demux = FlowDemux()
        a, b = [], []
        demux.register(0, a.append)
        demux.register(1, b.append)
        demux(make_data_packet(0, 1, flow_id=0))
        demux(make_data_packet(0, 1, flow_id=1))
        demux(make_data_packet(0, 1, flow_id=9))
        assert len(a) == 1 and len(b) == 1
        assert demux.unrouted == 1

    def test_two_flows_share_bottleneck(self, sim):
        wan = EmulatedPath(sim, PathConfig(20e6, 0.04, 200_000))
        ports = share_path(wan, 2)
        flows = []
        for flow_id, (fwd, rev) in enumerate(ports):
            conn = make_connection(sim, "tcp-tack", flow_id=flow_id,
                                   initial_rtt_s=0.04)
            conn.wire(fwd, rev)
            flows.append(conn)
        for conn in flows:
            conn.start_bulk()
        sim.run(until=10.0)
        total = sum(c.receiver.stats.bytes_delivered for c in flows) * 8 / 10.0
        # Together they saturate the bottleneck...
        assert total > 0.8 * 20e6
        # ...and each flow makes real progress.
        for conn in flows:
            assert conn.receiver.stats.bytes_delivered * 8 / 10.0 > 2e6
