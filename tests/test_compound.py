"""Tests for the Compound TCP controller (paper S7's future-work list)."""

import pytest

from repro.cc.base import RateSample
from repro.cc.compound import CompoundTcp
from repro.netsim.packet import MSS

from conftest import build_wired_connection


def fb(now, acked=MSS, lost=0, rtt=0.05, in_flight=10 * MSS):
    return RateSample(now=now, newly_acked=acked, newly_lost=lost, rtt=rtt,
                      delivery_rate_bps=None, in_flight=in_flight)


class TestCompoundUnit:
    def test_slow_start_on_sum(self):
        cc = CompoundTcp()
        w = cc.cwnd_bytes()
        cc.on_feedback(fb(0.1, acked=w))
        assert cc.cwnd_bytes() == 2 * w

    def test_dwnd_grows_without_queueing(self):
        cc = CompoundTcp()
        cc._ssthresh = 0  # force congestion avoidance
        for i in range(20):
            cc.on_feedback(fb(0.1 + i * 0.06, acked=5 * MSS, rtt=0.05))
        assert cc._dwnd > 0

    def test_dwnd_retreats_under_queueing(self):
        cc = CompoundTcp()
        cc._ssthresh = 0
        # Establish base RTT and grow a window well beyond gamma (30
        # packets) — smaller windows cannot exhibit enough backlog.
        for i in range(80):
            cc.on_feedback(fb(0.1 + i * 0.06, acked=20 * MSS, rtt=0.05))
        assert cc.cwnd_bytes() > 60 * MSS
        grown = cc._dwnd
        assert grown > 0
        # RTT inflates heavily: delay window must retreat.
        for i in range(40):
            cc.on_feedback(fb(6.0 + i * 0.3, acked=20 * MSS, rtt=0.3))
        assert cc._dwnd < grown

    def test_loss_halves_total(self):
        cc = CompoundTcp()
        before = cc.cwnd_bytes()
        cc.on_feedback(fb(1.0, acked=0, lost=MSS))
        assert cc.cwnd_bytes() < before

    def test_rto_resets(self):
        cc = CompoundTcp()
        cc.on_rto(1.0)
        assert cc.cwnd_bytes() == MSS

    def test_pacing_positive(self):
        cc = CompoundTcp()
        cc.on_feedback(fb(0.1))
        assert cc.pacing_rate_bps() > 0


class TestCompoundEndToEnd:
    @pytest.mark.parametrize("scheme", ["tcp-compound", "tcp-tack-compound"])
    def test_fills_pipe(self, sim, scheme):
        conn, _ = build_wired_connection(sim, scheme, rate_bps=20e6,
                                         rtt_s=0.04)
        conn.start_bulk()
        sim.run(until=8.0)
        goodput = conn.receiver.stats.bytes_delivered * 8 / 8.0
        assert goodput > 12e6

    def test_completes_with_loss(self, sim):
        conn, _ = build_wired_connection(sim, "tcp-tack-compound",
                                         rate_bps=10e6, rtt_s=0.05,
                                         data_loss=0.01)
        conn.start_transfer(300 * MSS)
        sim.run(until=30.0)
        assert conn.completed

    def test_tack_compound_uses_tacks(self, sim):
        conn, _ = build_wired_connection(sim, "tcp-tack-compound",
                                         rate_bps=10e6, rtt_s=0.05)
        conn.start_transfer(100 * MSS)
        sim.run(until=10.0)
        assert conn.completed
        assert conn.receiver.stats.tacks_sent > 0
        assert conn.receiver.stats.acks_sent == 0
