"""Tests for the repro.telemetry subsystem (collector, sinks, metrics)."""

import sys

import pytest

sys.path.insert(0, "tests")
from conftest import build_wired_connection, run_bulk  # noqa: E402

from repro.netsim.engine import Simulator  # noqa: E402
from repro.telemetry import (  # noqa: E402
    CAT_ACK,
    CATEGORIES,
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    TraceCollector,
    TraceEvent,
    read_header,
    read_trace,
    trace_digest,
)


def _traced_run(tmp_path=None, seed=42, duration=2.0, **conn_kwargs):
    """One bulk tcp-tack run with telemetry; returns (collector, conn)."""
    sink = (JsonlSink(str(tmp_path / "run.jsonl"))
            if tmp_path is not None else MemorySink())
    collector = TraceCollector(sink=sink)
    sim = Simulator(seed=seed, telemetry=collector)
    conn, _ = build_wired_connection(sim, "tcp-tack", **conn_kwargs)
    run_bulk(sim, conn, duration)
    collector.close()
    return collector, conn


class TestTraceEvent:
    def test_round_trip(self):
        event = TraceEvent(1.25, "ack", "tack", 3,
                           {"reason": "periodic", "cum_ack": 96000})
        assert TraceEvent.from_dict(event.to_dict()) == event

    def test_wire_keys_are_compact(self):
        d = TraceEvent(0.0, "cc", "update", 0, {"cwnd_bytes": 1}).to_dict()
        assert set(d) == {"t", "cat", "name", "flow", "data"}

    def test_missing_optional_keys_default(self):
        event = TraceEvent.from_dict({"t": 1.0, "cat": "netsim", "name": "x"})
        assert event.flow_id == 0
        assert event.fields == {}


class TestCollector:
    def test_category_filter(self):
        collector = TraceCollector(categories=["ack"])
        assert collector.emit("netsim", "drop") is None
        assert collector.emit("ack", "tack") is not None
        assert collector.events_dropped == 1
        assert [e.category for e in collector.events()] == ["ack"]

    def test_sampling_keeps_one_in_n(self):
        collector = TraceCollector(sampling={"netsim": 4})
        kept = [collector.emit("netsim", "enqueue", i) for i in range(12)]
        assert sum(e is not None for e in kept) == 3
        # ...and the kept ones are deterministic: every 4th, from the first.
        assert [e is not None for e in kept[:4]] == [True, False, False, False]

    def test_listener_sees_every_kept_event(self):
        seen = []
        collector = TraceCollector()
        collector.add_listener(seen.append)
        collector.emit("cc", "update", 1, cwnd_bytes=10)
        assert len(seen) == 1 and seen[0].fields["cwnd_bytes"] == 10

    def test_unattached_collector_stamps_zero(self):
        collector = TraceCollector()
        assert collector.emit("cc", "update").time == 0.0

    def test_events_raises_for_file_sink(self, tmp_path):
        collector = TraceCollector(JsonlSink(str(tmp_path / "t.jsonl")))
        with pytest.raises(TypeError):
            collector.events()
        collector.close()


class TestMemorySink:
    def test_ring_buffer_evicts_oldest(self):
        sink = MemorySink(max_events=3)
        for i in range(5):
            sink.append(TraceEvent(float(i), "cc", "update", 0))
        assert len(sink) == 3
        assert sink.evicted == 2
        assert [e.time for e in sink.events()] == [2.0, 3.0, 4.0]


class TestJsonlSink:
    def test_header_and_round_trip(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        sink = JsonlSink(path, meta={"seed": 7})
        events = [TraceEvent(0.1 * i, "ack", "tack", 0, {"reason": "periodic"})
                  for i in range(5)]
        for e in events:
            sink.append(e)
        digest = sink.digest()
        sink.close()
        header, loaded = read_trace(path)
        assert header["schema"] == "repro-telemetry"
        assert header["version"] == 1
        assert header["meta"] == {"seed": 7}
        assert loaded == events
        assert trace_digest(path) == digest

    def test_append_after_close_raises(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "t.jsonl"))
        sink.close()
        with pytest.raises(ValueError):
            sink.append(TraceEvent(0.0, "cc", "update"))


class TestLiveRun:
    def test_event_times_are_monotonic_sim_time(self):
        collector, conn = _traced_run()
        events = collector.events()
        assert len(events) > 100
        times = [e.time for e in events]
        assert times == sorted(times)
        assert times[-1] <= 2.0 + 1e-9

    def test_all_categories_fire_on_a_bulk_run(self):
        collector, _ = _traced_run()
        seen = {e.category for e in collector.events()}
        # "chaos" only fires when a fault schedule is armed and
        # "guard" only on feedback violations; an unimpaired bulk run
        # with a well-behaved peer exercises every other category.
        assert seen == set(CATEGORIES) - {"chaos", "guard"}

    def test_chaos_category_fires_when_armed(self):
        from repro.chaos import Blackout, ChaosInjector, FaultSchedule
        sim = Simulator(seed=5, telemetry=TraceCollector())
        conn, path = build_wired_connection(sim, "tcp-tack")
        schedule = FaultSchedule().add(
            Blackout(start_s=0.5, duration_s=0.2))
        ChaosInjector(sim, path, schedule).arm()
        run_bulk(sim, conn, 2.0)
        seen = {e.category for e in sim.telemetry.events()}
        assert "chaos" in seen

    def test_telemetry_does_not_perturb_the_simulation(self):
        collector, traced = _traced_run()
        sim = Simulator(seed=42)
        conn, _ = build_wired_connection(sim, "tcp-tack")
        run_bulk(sim, conn, 2.0)
        assert (traced.receiver.stats.bytes_delivered
                == conn.receiver.stats.bytes_delivered)
        assert traced.receiver.stats.tacks_sent == conn.receiver.stats.tacks_sent

    def test_identical_runs_produce_identical_events(self):
        first, _ = _traced_run(seed=7)
        second, _ = _traced_run(seed=7)
        assert first.events() == second.events()

    def test_sampling_is_deterministic_across_runs(self):
        def sampled():
            collector = TraceCollector(MemorySink(), sampling={"netsim": 8})
            sim = Simulator(seed=9, telemetry=collector)
            conn, _ = build_wired_connection(sim, "tcp-tack")
            run_bulk(sim, conn, 1.0)
            return collector.events()

        assert sampled() == sampled()

    def test_lossy_run_emits_loss_reason_iacks(self):
        collector, conn = _traced_run(seed=11, duration=4.0, data_loss=0.02)
        acks = [e for e in collector.events() if e.category == CAT_ACK]
        reasons = {e.fields.get("reason") for e in acks}
        assert "loss" in reasons          # IACK pulls for the gaps
        assert "periodic" in reasons      # the Eq. (3) clock kept running
        iacks = [e for e in acks if e.name == "iack"
                 and e.fields.get("reason") == "loss"]
        assert len(iacks) > 0
        assert conn.receiver.stats.iacks_sent >= len(iacks)

    def test_drop_events_carry_reason(self):
        collector, _ = _traced_run(seed=11, duration=4.0, data_loss=0.02)
        drops = [e for e in collector.events()
                 if e.category == "netsim" and e.name == "drop"]
        assert drops
        assert {e.fields["reason"] for e in drops} <= {"loss", "queue"}


class TestMetricsRegistry:
    def test_live_and_offline_agree(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        sink = JsonlSink(path)
        collector = TraceCollector(sink=sink)
        live = MetricsRegistry(cadence_s=0.25).attach(collector)
        sim = Simulator(seed=5, telemetry=collector)
        conn, _ = build_wired_connection(sim, "tcp-tack")
        run_bulk(sim, conn, 2.0)
        collector.close()

        offline = MetricsRegistry.from_trace(path, cadence_s=0.25)
        assert live.flows() == offline.flows()
        flow = live.flows()[0]
        for metric in ("goodput_bps", "ack_hz", "inflight_bytes", "srtt_s"):
            assert live.series(flow, metric) == offline.series(flow, metric)
        assert live.summary(flow) == offline.summary(flow)

    def test_goodput_matches_receiver_stats(self):
        collector = TraceCollector()
        registry = MetricsRegistry(cadence_s=0.5).attach(collector)
        sim = Simulator(seed=5, telemetry=collector)
        conn, _ = build_wired_connection(sim, "tcp-tack")
        run_bulk(sim, conn, 2.0)
        flow = registry.flows()[0]
        assert (registry.summary(flow)["bytes_delivered"]
                == conn.receiver.stats.bytes_delivered)

    def test_unknown_metric_raises(self):
        registry = MetricsRegistry()
        registry.feed(TraceEvent(0.0, "ack", "tack", 1))
        with pytest.raises(KeyError):
            registry.series(1, "nope")

    def test_bad_cadence_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry(cadence_s=0.0)


class TestTraceIo:
    def test_read_header_only(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        JsonlSink(path, meta={"x": 1}).close()
        assert read_header(path)["meta"] == {"x": 1}

    def test_rejects_non_trace_file(self, tmp_path):
        from repro.telemetry import TraceFormatError
        path = tmp_path / "bogus.jsonl"
        path.write_text('{"not": "a trace"}\n')
        with pytest.raises(TraceFormatError):
            read_header(str(path))
