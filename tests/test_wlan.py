"""Unit tests for the WLAN PHY profiles, DCF medium, and stations."""

import pytest

from repro.netsim.packet import make_ack_packet, make_data_packet
from repro.wlan.medium import WirelessMedium
from repro.wlan.phy import PHY_PROFILES, PhyProfile, get_profile
from repro.wlan.station import Station, wireless_pair


class TestPhyProfiles:
    def test_all_four_standards_present(self):
        assert set(PHY_PROFILES) == {
            "802.11b", "802.11g", "802.11n", "802.11ac"
        }

    def test_phy_rates_match_paper_figure7(self):
        assert PHY_PROFILES["802.11b"].phy_rate_bps == 11e6
        assert PHY_PROFILES["802.11g"].phy_rate_bps == 54e6
        assert PHY_PROFILES["802.11n"].phy_rate_bps == 300e6
        assert PHY_PROFILES["802.11ac"].phy_rate_bps == pytest.approx(866.7e6)

    @pytest.mark.parametrize(
        "name,target,tolerance",
        [
            ("802.11b", 7e6, 0.20),
            ("802.11g", 26e6, 0.10),
            ("802.11n", 210e6, 0.05),
            ("802.11ac", 590e6, 0.05),
        ],
    )
    def test_saturation_goodput_near_paper_udp_baseline(self, name, target, tolerance):
        goodput = PHY_PROFILES[name].saturation_goodput_bps()
        assert abs(goodput - target) / target < tolerance

    def test_get_profile_short_form(self):
        assert get_profile("n") is PHY_PROFILES["802.11n"]
        with pytest.raises(KeyError):
            get_profile("802.11zz")

    def test_aggregation_only_on_n_ac(self):
        assert PHY_PROFILES["802.11b"].aggregate_limit(1518) == 1
        assert PHY_PROFILES["802.11g"].aggregate_limit(1518) == 1
        assert PHY_PROFILES["802.11n"].aggregate_limit(1518) > 1
        assert PHY_PROFILES["802.11ac"].aggregate_limit(1518) > 1

    def test_exchange_airtime_positive_and_monotone(self):
        phy = PHY_PROFILES["802.11n"]
        assert phy.exchange_airtime(1518) > phy.ppdu_airtime(1518)
        assert phy.exchange_airtime(3036) > phy.exchange_airtime(1518)

    def test_invalid_profile_params(self):
        with pytest.raises(ValueError):
            PhyProfile("x", phy_rate_bps=0, basic_rate_bps=1e6, slot_s=9e-6,
                       sifs_s=1e-5, difs_s=3e-5, preamble_s=2e-5, ack_s=3e-5)


def _saturate(sim, station, n=600):
    for i in range(n):
        station.send(make_data_packet(i * 1500, i + 1))


class TestSingleStation:
    def test_goodput_matches_analytic_model(self, sim):
        phy = get_profile("802.11g")
        medium = WirelessMedium(sim, phy)
        ap, sta = wireless_pair(medium, queue_frames=4096)
        got = [0]
        sta.connect(lambda p: got.__setitem__(0, got[0] + p.payload_len))
        _saturate(sim, ap, 3000)
        sim.run(until=1.0)
        assert got[0] * 8 == pytest.approx(phy.saturation_goodput_bps(), rel=0.02)

    def test_no_collisions_single_contender(self, sim):
        medium = WirelessMedium(sim, get_profile("802.11b"))
        ap, sta = wireless_pair(medium)
        sta.connect(lambda p: None)
        _saturate(sim, ap, 100)
        sim.run(until=1.0)
        assert medium.collisions == 0

    def test_ampdu_aggregation_depth(self, sim):
        medium = WirelessMedium(sim, get_profile("802.11n"))
        ap, sta = wireless_pair(medium)
        sta.connect(lambda p: None)
        _saturate(sim, ap, 240)
        sim.run(until=0.5)
        depth = ap.frames_sent / ap.txops_won
        assert depth > 8  # deep aggregation when backlogged

    def test_aggregate_false_sends_single_frames(self, sim):
        medium = WirelessMedium(sim, get_profile("802.11n"))
        ap = Station(medium, "ap", aggregate=False)
        sta = Station(medium, "sta")
        ap.set_peer(sta)
        sta.set_peer(ap)
        medium.register(ap)
        medium.register(sta)
        sta.connect(lambda p: None)
        _saturate(sim, ap, 50)
        sim.run(until=0.1)
        assert ap.frames_sent == ap.txops_won


class TestContention:
    def test_two_contenders_collide_sometimes(self, sim):
        medium = WirelessMedium(sim, get_profile("802.11g"))
        a, b = wireless_pair(medium)
        a.connect(lambda p: None)
        b.connect(lambda p: None)
        _saturate(sim, a, 2000)
        _saturate(sim, b, 2000)
        sim.run(until=1.0)
        assert medium.collisions > 0
        # DCF with CW_min 15 gives a few percent collision rate.
        assert medium.collision_rate() < 0.3

    def test_collided_frames_retried_not_lost(self, sim):
        medium = WirelessMedium(sim, get_profile("802.11g"))
        a, b = wireless_pair(medium)
        got_a, got_b = [0], [0]
        a.connect(lambda p: got_a.__setitem__(0, got_a[0] + 1))
        b.connect(lambda p: got_b.__setitem__(0, got_b[0] + 1))
        for i in range(50):
            a.send(make_data_packet(i * 1500, i + 1))
            b.send(make_data_packet(i * 1500, i + 1))
        sim.run()
        assert got_a[0] == 50
        assert got_b[0] == 50

    def test_fair_airtime_split(self, sim):
        medium = WirelessMedium(sim, get_profile("802.11g"))
        a, b = wireless_pair(medium)
        a.connect(lambda p: None)
        b.connect(lambda p: None)
        _saturate(sim, a, 3000)
        _saturate(sim, b, 3000)
        sim.run(until=1.0)
        ratio = a.txops_won / max(b.txops_won, 1)
        assert 0.8 < ratio < 1.25


class TestPhyErrors:
    def test_mpdu_errors_cause_mac_retry(self, sim):
        medium = WirelessMedium(sim, get_profile("802.11n"), per_mpdu_error_rate=0.2)
        ap, sta = wireless_pair(medium)
        got = [0]
        sta.connect(lambda p: got.__setitem__(0, got[0] + 1))
        _saturate(sim, ap, 100)
        sim.run(until=1.0)
        assert medium.mpdu_phy_errors > 0
        # One MAC retry recovers most errors (expected residual loss is
        # rate^2 = 4%; allow statistical slack).
        assert got[0] >= 88

    def test_error_rate_validation(self, sim):
        with pytest.raises(ValueError):
            WirelessMedium(sim, get_profile("802.11n"), per_mpdu_error_rate=1.5)


class TestStationQueue:
    def test_queue_overflow_drops(self, sim):
        medium = WirelessMedium(sim, get_profile("802.11b"))
        ap, sta = wireless_pair(medium, queue_frames=10)
        sta.connect(lambda p: None)
        for i in range(50):
            ap.send(make_data_packet(i * 1500, i + 1))
        assert ap.frames_dropped_queue > 0

    def test_control_aggregate_limit(self, sim):
        medium = WirelessMedium(sim, get_profile("802.11n"))
        ap = Station(medium, "ap", control_aggregate_limit=2)
        sta = Station(medium, "sta")
        ap.set_peer(sta)
        sta.set_peer(ap)
        medium.register(ap)
        medium.register(sta)
        got = [0]
        sta.connect(lambda p: got.__setitem__(0, got[0] + 1))
        for _ in range(20):
            ap.send(make_ack_packet())
        sim.run(until=0.5)
        assert got[0] == 20
        # 20 small frames at <=2 per TXOP plus the leading frame rule.
        assert ap.txops_won >= 8
