"""Tests for the packet tap / tracing helpers."""

import pytest

from repro.netsim.packet import PacketType, make_ack_packet, make_data_packet
from repro.netsim.pipe import Pipe
from repro.netsim.trace import Tap, make_tap


class TestTap:
    def test_factory_returns_tap(self, sim):
        assert isinstance(make_tap(sim), Tap)

    def test_records_and_forwards(self, sim):
        got = []
        tap = make_tap(sim, sink=got.append)
        pipe = Pipe(sim, 0.01, sink=tap)
        pipe.send(make_data_packet(0, 1))
        sim.run()
        assert len(got) == 1
        assert tap.count() == 1
        assert tap.records[0].time == pytest.approx(0.01)

    def test_counts_by_kind(self, sim):
        tap = make_tap(sim)
        tap(make_data_packet(0, 1))
        tap(make_ack_packet())
        tap(make_ack_packet(kind=PacketType.TACK))
        tap(make_ack_packet(kind=PacketType.IACK))
        assert tap.count(PacketType.DATA) == 1
        assert tap.count_acks() == 3
        assert tap.count() == 4

    def test_bytes_and_rate(self, sim):
        tap = make_tap(sim)
        sim.call_in(1.0, lambda: tap(make_data_packet(0, 1)))
        sim.run()
        assert tap.bytes_seen() == 1518
        assert tap.bytes_seen(PacketType.ACK) == 0
        assert tap.rate_bps(start_s=0.0, end_s=2.0) == pytest.approx(1518 * 8 / 2.0)

    def test_rate_window_filters(self, sim):
        tap = make_tap(sim)
        sim.call_in(1.0, lambda: tap(make_data_packet(0, 1)))
        sim.call_in(5.0, lambda: tap(make_data_packet(1500, 2)))
        sim.run()
        only_first = tap.rate_bps(start_s=0.0, end_s=2.0)
        assert only_first == pytest.approx(1518 * 8 / 2.0)

    def test_zero_duration_rate(self, sim):
        tap = make_tap(sim)
        assert tap.rate_bps(start_s=1.0, end_s=1.0) == 0.0

    def test_clear(self, sim):
        tap = make_tap(sim)
        tap(make_data_packet(0, 1))
        tap.clear()
        assert tap.count() == 0

    def test_tap_without_sink(self, sim):
        tap = make_tap(sim)
        tap(make_data_packet(0, 1))  # must not raise
        assert tap.count() == 1

    def test_max_records_bounds_memory(self, sim):
        tap = make_tap(sim, max_records=3)
        for i in range(10):
            tap(make_data_packet(i * 1500, i))
        assert len(tap.records) == 3
        # Oldest records are evicted; the newest three survive.
        assert [r.pkt_seq for r in tap.records] == [7, 8, 9]

    def test_unbounded_by_default(self, sim):
        tap = make_tap(sim)
        for i in range(10):
            tap(make_data_packet(i * 1500, i))
        assert len(tap.records) == 10

    def test_tap_forwards_to_telemetry(self, sim):
        from repro.telemetry import TraceCollector
        collector = TraceCollector().attach(sim)
        tap = make_tap(sim, telemetry=collector)
        tap(make_data_packet(0, 1))
        events = collector.events()
        assert len(events) == 1
        assert events[0].category == "netsim"
        assert events[0].name == "tap"

    def test_tap_picks_up_simulator_collector(self):
        from repro.netsim.engine import Simulator
        from repro.telemetry import TraceCollector
        sim = Simulator(seed=1, telemetry=TraceCollector())
        tap = make_tap(sim)
        tap(make_data_packet(0, 1))
        assert len(sim.telemetry.events()) == 1

    def test_tap_on_live_connection(self, sim):
        """Tap a real connection's reverse path to count ACK flavors."""
        import sys
        sys.path.insert(0, "tests")
        from conftest import build_wired_connection

        conn, path = build_wired_connection(sim, "tcp-tack", rate_bps=10e6,
                                            rtt_s=0.05)
        original_sink = conn.sender.on_packet
        tap = make_tap(sim, sink=original_sink)
        path.wan.reverse.connect(tap)
        conn.start_transfer(50 * 1500)
        sim.run(until=5.0)
        assert conn.completed
        assert tap.count(PacketType.TACK) > 0
        assert tap.count(PacketType.TACK) == conn.receiver.stats.tacks_sent
