"""DCF medium edge cases: retry limits, many contenders, airtime
accounting, and saturation scaling."""

import pytest

from repro.netsim.packet import make_data_packet
from repro.wlan.medium import WirelessMedium
from repro.wlan.phy import get_profile
from repro.wlan.station import Station, wireless_pair


class TestRetryLimit:
    def test_persistent_collisions_eventually_drop(self, sim):
        """Two stations forced into lockstep collisions exhaust the
        retry limit and drop frames instead of looping forever."""
        medium = WirelessMedium(sim, get_profile("802.11g"))
        a, b = wireless_pair(medium)
        a.connect(lambda p: None)
        b.connect(lambda p: None)
        # Force every backoff draw to zero: all rounds collide.
        medium.rng.randint = lambda lo, hi: 0  # type: ignore[method-assign]
        a.send(make_data_packet(0, 1))
        b.send(make_data_packet(0, 1))
        sim.run(until=1.0)
        assert a.frames_dropped_retry > 0
        assert b.frames_dropped_retry > 0
        assert not sim.pending() or medium.collision_rate() == 1.0


class TestManyContenders:
    @pytest.mark.parametrize("n", [3, 6, 10])
    def test_collision_rate_grows_with_contenders(self, sim, n):
        medium = WirelessMedium(sim, get_profile("802.11g"))
        stations = []
        for i in range(n):
            s = Station(medium, f"s{i}", queue_frames=4096)
            medium.register(s)
            stations.append(s)
        for i, s in enumerate(stations):
            s.set_peer(stations[(i + 1) % n])
            s.connect(lambda p: None)
            for j in range(500):
                s.send(make_data_packet(j * 1500, j + 1))
        sim.run(until=0.5)
        assert medium.collisions > 0
        # Airtime conservation: busy time cannot exceed wall time.
        assert medium.airtime_busy_s <= sim.now() + 1e-9

    def test_total_goodput_shared(self, sim):
        medium = WirelessMedium(sim, get_profile("802.11g"))
        stations = []
        received = [0]
        n = 4
        for i in range(n):
            s = Station(medium, f"s{i}", queue_frames=4096)
            medium.register(s)
            stations.append(s)
        for i, s in enumerate(stations):
            s.set_peer(stations[(i + 1) % n])
            s.connect(lambda p: received.__setitem__(0, received[0] + p.payload_len))
            for j in range(2000):
                s.send(make_data_packet(j * 1500, j + 1))
        sim.run(until=1.0)
        total = received[0] * 8
        # Aggregate stays in the ballpark of single-station saturation:
        # collisions waste airtime, but N contenders also shorten the
        # per-round idle (the winner's backoff is the min of N draws),
        # so the total can sit slightly above the one-station figure.
        sat = get_profile("802.11g").saturation_goodput_bps()
        assert 0.6 * sat < total < 1.15 * sat


class TestAirtimeAccounting:
    def test_collided_airtime_subset_of_busy(self, sim):
        medium = WirelessMedium(sim, get_profile("802.11g"))
        a, b = wireless_pair(medium, queue_frames=4096)
        a.connect(lambda p: None)
        b.connect(lambda p: None)
        for i in range(1000):
            a.send(make_data_packet(i * 1500, i + 1))
            b.send(make_data_packet(i * 1500, i + 1))
        sim.run(until=1.0)
        assert 0 < medium.airtime_collided_s < medium.airtime_busy_s

    def test_busy_fraction_high_at_saturation(self, sim):
        medium = WirelessMedium(sim, get_profile("802.11b"))
        ap, sta = wireless_pair(medium, queue_frames=4096)
        sta.connect(lambda p: None)
        for i in range(2000):
            ap.send(make_data_packet(i * 1500, i + 1))
        sim.run(until=1.0)
        # 802.11b spends most airtime busy at saturation (long frames).
        assert medium.airtime_busy_s / sim.now() > 0.75
