"""Flow doctor: send-limit state machine, anomaly detection, run-diff
explanation, and the live == offline identity contract.

The engine is a pure stream reducer, so the synthetic tests drive it
directly with hand-built event streams; the identity tests run real
chaos scenarios with both planes attached and compare digests.
"""

import json
import math

import pytest

from repro.chaos import get_scenario, run_scenario
from repro.diagnose import (
    ALL_STATES,
    DiagnosisConfig,
    DiagnosisEngine,
    diagnose_trace,
    explain_reports,
)
from repro.diagnose.cli import main as diagnose_main
from repro.telemetry import BinaryFileSink, JsonlSink, TraceCollector
from repro.telemetry.cli import main as telemetry_main

MSS = 1448


def drive(engine, events):
    """Feed (t, cat, name, fields) tuples for flow 0."""
    for t, cat, name, fields in events:
        engine.observe(t, cat, name, 0, fields)


def basic_lifetime(extra=(), close_t=10.0):
    """open -> established -> a little traffic -> close."""
    return [
        (0.0, "transport", "open", {"total_bytes": 100 * MSS}),
        (0.1, "transport", "established", {"rtt_s": 0.1}),
        (0.2, "transport", "limited", {"limit": "pacing"}),
        *extra,
        (close_t, "transport", "close", {"cum_acked": 100 * MSS}),
    ]


class TestStateMachine:
    def test_states_partition_lifetime_exactly(self):
        engine = DiagnosisEngine()
        drive(engine, basic_lifetime(extra=[
            (1.0, "transport", "limited", {"limit": "app"}),
            (4.0, "transport", "rto", {"rto_s": 0.4, "in_flight": MSS}),
            (6.0, "transport", "recovery", {"mode": "none"}),
        ]))
        flow = engine.flows()["0"]
        assert flow["duration_s"] == pytest.approx(10.0)
        assert math.fsum(flow["state_time_s"].values()) == pytest.approx(
            flow["duration_s"])
        for state in flow["state_time_s"]:
            assert state in ALL_STATES

    def test_handshake_then_pacing_then_close(self):
        engine = DiagnosisEngine()
        drive(engine, basic_lifetime())
        flow = engine.flows()["0"]
        times = flow["state_time_s"]
        assert times["handshake"] == pytest.approx(0.1)
        # cwnd-limited default between established and the limited event
        assert times["cwnd-limited"] == pytest.approx(0.1)
        assert times["pacing-limited"] == pytest.approx(9.8)
        assert flow["dominant"] == "pacing-limited"

    def test_rto_recovery_shadows_pull(self):
        engine = DiagnosisEngine()
        drive(engine, basic_lifetime(extra=[
            (1.0, "transport", "recovery", {"mode": "pull"}),
            (2.0, "transport", "rto", {"rto_s": 0.4, "in_flight": MSS}),
            (2.0, "transport", "recovery", {"mode": "rto"}),
            (5.0, "transport", "recovery", {"mode": "none"}),
        ]))
        times = engine.flows()["0"]["state_time_s"]
        assert times["pull-recovery"] == pytest.approx(1.0)
        assert times["rto-recovery"] == pytest.approx(3.0)

    def test_dominant_excludes_closing_tail(self):
        engine = DiagnosisEngine()
        drive(engine, basic_lifetime(extra=[
            (0.5, "transport", "complete", {"total_bytes": 100 * MSS}),
        ], close_t=120.0))
        flow = engine.flows()["0"]
        assert flow["state_time_s"]["closing"] > 100.0
        assert flow["dominant"] == "pacing-limited"
        assert flow["outcome"] == "completed"

    def test_rwnd_limited_and_persist_stall_anomaly(self):
        engine = DiagnosisEngine(DiagnosisConfig(persist_stall_s=1.0))
        drive(engine, basic_lifetime(extra=[
            (1.0, "transport", "limited", {"limit": "rwnd"}),
            (1.5, "transport", "persist", {"attempts": 1}),
            (4.0, "transport", "limited", {"limit": "cwnd"}),
        ]))
        flow = engine.flows()["0"]
        assert flow["state_time_s"]["rwnd-limited"] == pytest.approx(3.0)
        kinds = [a["kind"] for a in flow["anomalies"]]
        assert "persist-stall" in kinds

    def test_abort_outcome(self):
        engine = DiagnosisEngine()
        drive(engine, [
            (0.0, "transport", "open", {"total_bytes": 10 * MSS}),
            (0.1, "transport", "established", {"rtt_s": 0.1}),
            (3.0, "transport", "abort",
             {"reason": "rto_exhausted", "attempts": 7}),
            (3.0, "transport", "close", {"cum_acked": 0}),
        ])
        flow = engine.flows()["0"]
        assert flow["outcome"] == "aborted"
        assert flow["abort_reason"] == "rto_exhausted"

    def test_unknown_event_names_do_not_change_the_report(self):
        """The vocabulary gate: sampled/high-rate trace events (send,
        recv, cc/update...) must not perturb evidence offsets, so a
        sampled trace and the live plane agree."""
        events = basic_lifetime()
        noisy = list(events)
        noisy.insert(3, (0.3, "transport", "send", {"nbytes": MSS}))
        noisy.insert(3, (0.3, "cc", "update", {"cwnd": 10}))
        noisy.insert(3, (0.3, "netsim", "deliver", {"nbytes": MSS}))
        a, b = DiagnosisEngine(), DiagnosisEngine()
        drive(a, events)
        drive(b, noisy)
        assert a.report()["digest"] == b.report()["digest"]


class TestAnomalies:
    def test_ack_starvation_episode_split(self):
        cfg = DiagnosisConfig()
        rtt = 0.1
        threshold = cfg.starve_threshold_s(rtt)
        events = basic_lifetime(extra=[
            (0.3, "transport", "feedback",
             {"kind": "tack", "cum_ack": MSS, "acked_bytes": MSS,
              "lost_bytes": 0, "in_flight": 4 * MSS, "awnd": 1 << 20,
              "fb_seq": 0, "rho_est": 0.0}),
            # silence until 5.0 — far beyond the starvation threshold;
            # in_flight drains to 0 so no further episode can open
            (5.0, "transport", "feedback",
             {"kind": "tack", "cum_ack": 2 * MSS, "acked_bytes": MSS,
              "lost_bytes": 0, "in_flight": 0, "awnd": 1 << 20,
              "fb_seq": 1, "rho_est": 0.0}),
        ])
        engine = DiagnosisEngine(cfg)
        drive(engine, events)
        flow = engine.flows()["0"]
        starved = [a for a in flow["anomalies"]
                   if a["kind"] == "ack-starvation"]
        assert starved and starved[0]["count"] == 1
        assert flow["state_time_s"]["ack-starved"] == pytest.approx(
            5.0 - (0.3 + threshold))

    def test_spurious_rto_fast_feedback_rule(self):
        engine = DiagnosisEngine()
        drive(engine, basic_lifetime(extra=[
            (2.0, "transport", "rto", {"rto_s": 0.4, "in_flight": 4 * MSS}),
            # progress only 10 ms after the timeout << rtt_min
            (2.01, "transport", "feedback",
             {"kind": "tack", "cum_ack": MSS, "acked_bytes": MSS,
              "lost_bytes": 0, "in_flight": 0, "awnd": 1 << 20,
              "fb_seq": 0, "rho_est": 0.0}),
        ]))
        kinds = [a["kind"] for a in engine.flows()["0"]["anomalies"]]
        assert "spurious-rto" in kinds

    def test_spurious_rto_rtt_overshoot_rule(self):
        """Eifel-lite: a valid RTT sample larger than the timer that
        fired proves the flight was delayed, not lost."""
        engine = DiagnosisEngine()
        drive(engine, basic_lifetime(extra=[
            (2.0, "transport", "rto", {"rto_s": 0.4, "in_flight": 4 * MSS}),
            (2.6, "timing", "rtt_sample",
             {"rtt_s": 0.55, "srtt_s": 0.2, "rtt_min_s": 0.1}),
        ]))
        kinds = [a["kind"] for a in engine.flows()["0"]["anomalies"]]
        assert "spurious-rto" in kinds

    def test_genuine_rto_not_flagged(self):
        engine = DiagnosisEngine()
        drive(engine, basic_lifetime(extra=[
            (2.0, "transport", "rto", {"rto_s": 0.4, "in_flight": 4 * MSS}),
            # recovery completes a full RTT later with normal samples
            (2.5, "timing", "rtt_sample",
             {"rtt_s": 0.1, "srtt_s": 0.1, "rtt_min_s": 0.1}),
            (2.5, "transport", "feedback",
             {"kind": "tack", "cum_ack": MSS, "acked_bytes": MSS,
              "lost_bytes": 0, "in_flight": 0, "awnd": 1 << 20,
              "fb_seq": 0, "rho_est": 0.0}),
        ]))
        kinds = [a["kind"] for a in engine.flows()["0"]["anomalies"]]
        assert "spurious-rto" not in kinds

    def test_rho_mismatch_between_estimate_and_fb_seq_truth(self):
        cfg = DiagnosisConfig(rho_min_feedbacks=10)
        extra = []
        # 10 feedbacks received out of fb_seq 0..19 -> truth 0.5,
        # while the sender's estimate stays 0.
        for i in range(10):
            extra.append((0.3 + 0.1 * i, "transport", "feedback",
                          {"kind": "tack", "cum_ack": (i + 1) * MSS,
                           "acked_bytes": MSS, "lost_bytes": 0,
                           "in_flight": MSS, "awnd": 1 << 20,
                           "fb_seq": 2 * i + 1, "rho_est": 0.0}))
        engine = DiagnosisEngine(cfg)
        drive(engine, basic_lifetime(extra=extra))
        flow = engine.flows()["0"]
        assert flow["rho"]["truth"] == pytest.approx(0.5)
        kinds = [a["kind"] for a in flow["anomalies"]]
        assert "rho-mismatch" in kinds


class TestByteAttribution:
    def test_bytes_attributed_to_state_in_force(self):
        engine = DiagnosisEngine()
        drive(engine, basic_lifetime(extra=[
            (1.0, "transport", "feedback",
             {"kind": "tack", "cum_ack": 10 * MSS, "acked_bytes": 10 * MSS,
              "lost_bytes": 0, "in_flight": MSS, "awnd": 1 << 20,
              "fb_seq": 0, "rho_est": 0.0}),
        ]))
        flow = engine.flows()["0"]
        assert flow["state_bytes"]["pacing-limited"] == 10 * MSS
        assert flow["bytes_acked"] == 10 * MSS

    def test_goodput_over_active_lifetime(self):
        engine = DiagnosisEngine()
        drive(engine, basic_lifetime(extra=[
            (1.0, "transport", "feedback",
             {"kind": "tack", "cum_ack": 100 * MSS,
              "acked_bytes": 100 * MSS, "lost_bytes": 0, "in_flight": 0,
              "awnd": 1 << 20, "fb_seq": 0, "rho_est": 0.0}),
            (1.0, "transport", "complete", {"total_bytes": 100 * MSS}),
        ], close_t=100.0))
        flow = engine.flows()["0"]
        # 99 s of closing tail must not dilute the rate
        assert flow["active_s"] == pytest.approx(1.0)
        assert flow["goodput_bps"] == pytest.approx(100 * MSS * 8.0 / 1.0)


def run_traced_scenario(tmp_path, scheme, binary=False, name="blackout"):
    path = tmp_path / ("t.rtb" if binary else "t.jsonl")
    sink = BinaryFileSink(str(path)) if binary else JsonlSink(str(path))
    collector = TraceCollector(sink)
    result = run_scenario(get_scenario(name), scheme=scheme, seed=1,
                          simsan=True, telemetry=collector)
    collector.close()
    return result, path


class TestLiveOfflineIdentity:
    """Satellite: the live doctor and the offline trace replay must
    produce byte-identical reports across every scheme, for JSONL,
    converted-binlog, and directly-read binary traces."""

    @pytest.mark.parametrize(
        "scheme", ("tcp-tack", "tcp-bbr-perpacket", "tcp-bbr", "tcp-cubic"))
    def test_jsonl_replay_matches_live(self, tmp_path, scheme):
        result, path = run_traced_scenario(tmp_path, scheme)
        offline = diagnose_trace(str(path))
        assert offline["digest"] == result.diagnosis["digest"]
        assert offline["flows"] == result.diagnosis["flows"]

    def test_binary_direct_and_converted_match_live(self, tmp_path):
        result, rtb = run_traced_scenario(tmp_path, "tcp-tack", binary=True)
        # direct .rtb read
        direct = diagnose_trace(str(rtb))
        assert direct["digest"] == result.diagnosis["digest"]
        # via telemetry convert
        out = tmp_path / "converted.jsonl"
        assert telemetry_main(["convert", str(rtb), str(out)]) == 0
        converted = diagnose_trace(str(out))
        assert converted["digest"] == result.diagnosis["digest"]


class TestExplain:
    def make_reports(self):
        fast = DiagnosisEngine()
        drive(fast, basic_lifetime(extra=[
            (1.0, "transport", "feedback",
             {"kind": "tack", "cum_ack": 100 * MSS,
              "acked_bytes": 100 * MSS, "lost_bytes": 0, "in_flight": 0,
              "awnd": 1 << 20, "fb_seq": 0, "rho_est": 0.0}),
            (1.0, "transport", "complete", {"total_bytes": 100 * MSS}),
        ], close_t=1.5))
        slow = DiagnosisEngine()
        drive(slow, basic_lifetime(extra=[
            (1.0, "transport", "rto", {"rto_s": 0.4, "in_flight": 4 * MSS}),
            (1.0, "transport", "recovery", {"mode": "rto"}),
            (4.0, "transport", "recovery", {"mode": "none"}),
            (5.0, "transport", "feedback",
             {"kind": "tack", "cum_ack": 100 * MSS,
              "acked_bytes": 100 * MSS, "lost_bytes": 0, "in_flight": 0,
              "awnd": 1 << 20, "fb_seq": 0, "rho_est": 0.0}),
            (5.0, "transport", "complete", {"total_bytes": 100 * MSS}),
        ], close_t=5.5))
        return fast.report(), slow.report()

    def test_attribution_names_recovery_time(self):
        fast, slow = self.make_reports()
        explanation = explain_reports(fast, slow, "fast", "slow")
        assert explanation["goodput_delta_frac"] < -0.5
        top = explanation["attribution"][0]
        assert top["state"] == "rto-recovery"
        assert top["delta_s"] == pytest.approx(3.0)
        assert "slow lost" in explanation["headline"]
        assert "rto-recovery" in explanation["headline"]

    def test_identical_reports_match(self):
        fast, _ = self.make_reports()
        explanation = explain_reports(fast, fast)
        assert explanation["goodput_delta_frac"] == pytest.approx(0.0)
        assert explanation["attribution"] == []
        assert "matches" in explanation["headline"]


class TestCli:
    def test_report_and_check_and_explain(self, tmp_path, capsys):
        _, clean = run_traced_scenario(tmp_path, "tcp-tack",
                                       name="jitter-reorder")
        _, impaired = run_traced_scenario(tmp_path, "tcp-cubic",
                                          name="blackout")
        assert diagnose_main(["report", str(clean)]) == 0
        capsys.readouterr()
        assert diagnose_main(["report", str(clean), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro-diagnosis"
        assert "0" in doc["flows"]

        # check: matching expectation -> 0, wrong expectation -> 1
        assert diagnose_main(
            ["check", str(impaired), "--expect", "rto-recovery"]) == 0
        capsys.readouterr()
        assert diagnose_main(
            ["check", str(impaired), "--expect", "handshake"]) == 1
        capsys.readouterr()

        out = tmp_path / "explain.json"
        assert diagnose_main(["explain", str(clean), str(impaired),
                              "--save", str(out)]) == 0
        saved = json.loads(out.read_text())
        assert "headline" in saved and "attribution" in saved

    def test_missing_trace_is_usage_error(self, capsys):
        assert diagnose_main(["report", "/nonexistent/trace.jsonl"]) == 2
        assert "error" in capsys.readouterr().err
