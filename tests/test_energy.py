"""Tests for the per-flow energy/airtime ledger (``repro.energy``).

The ledger is the quantitative backing for the paper's "fewer ACKs"
claim: billing DCF exchange airtimes at WaveLAN power draws must show
TACK spending less radio energy on the ACK path than delayed ACKs,
which in turn spend less than per-packet ACKs.
"""

import pytest

from repro.core.flavors import make_connection
from repro.energy import (
    COUNT_KEYS,
    TOTAL_KEYS,
    EnergyLedger,
    get_power_model,
)
from repro.netsim.engine import Simulator
from repro.netsim.packet import make_ack_packet, make_data_packet
from repro.netsim.paths import wired_path, wlan_path
from repro.stats.streaming import ExactSum
from repro.wlan.phy import get_profile


class TestLedgerArithmetic:
    def test_tx_rx_energy_matches_hand_computation(self):
        ledger = EnergyLedger(phy="802.11n", power="wavelan")
        phy = get_profile("802.11n")
        power = get_power_model("wavelan")
        data = make_data_packet(0, 0, payload_len=1460, flow_id=3)
        ack = make_ack_packet(flow_id=3)

        ledger.on_tx(data)
        ledger.on_rx(data)
        ledger.on_tx(ack)

        data_air = (phy.difs_s + phy.mean_backoff_s()
                    + phy.exchange_airtime(phy.mpdu_bytes(data.size)))
        ack_air = (phy.difs_s + phy.mean_backoff_s()
                   + phy.exchange_airtime(phy.mpdu_bytes(ack.size)))
        rec = ledger.live_flows()[3]
        assert rec.data_airtime_s == pytest.approx(data_air)
        assert rec.ack_airtime_s == pytest.approx(ack_air)
        assert rec.data_energy_j == pytest.approx(
            data_air * power.tx_w + data_air * power.rx_w)
        assert rec.ack_energy_j == pytest.approx(ack_air * power.tx_w)
        assert rec.data_pkts == 1
        assert rec.ack_pkts == 1

    def test_idle_energy_fills_flow_lifetime(self):
        ledger = EnergyLedger(power="wavelan")

        class _Clock:
            t = 0.0

            def now(self):
                return self.t

        clock = _Clock()
        ledger._now = clock.now
        ledger.flow_opened(1)
        clock.t = 2.0
        ledger.flow_closed(1)
        summary = ledger.pop_flow(1)
        # no packets at all: the whole 2 s lifetime idles
        assert summary["idle_energy_j"] == pytest.approx(
            2.0 * get_power_model("wavelan").idle_w)
        assert summary["total_energy_j"] == summary["idle_energy_j"]

    def test_psm_model_cuts_idle_draw(self):
        assert (get_power_model("wavelan-psm").idle_w
                < get_power_model("wavelan").idle_w / 10)

    def test_unknown_power_model_rejected(self):
        with pytest.raises(KeyError, match="unknown power model"):
            get_power_model("nuclear")

    def test_partials_merge_is_order_insensitive(self):
        """Retired-flow totals are ExactSum partials: merging shard
        summaries in any order gives bit-identical values."""
        ledgers = []
        for k in range(3):
            ledger = EnergyLedger()
            for i in range(20):
                ledger.on_tx(make_data_packet(i, i, 1460 - 7 * k, flow_id=i))
                ledger.on_tx(make_ack_packet(flow_id=i))
                ledger.pop_flow(i)
            ledgers.append(ledger.summary())
        for key in TOTAL_KEYS:
            fwd = ExactSum()
            rev = ExactSum()
            for s in ledgers:
                fwd.merge(ExactSum(s["partials"][key]["partials"]))
            for s in reversed(ledgers):
                rev.merge(ExactSum(s["partials"][key]["partials"]))
            assert fwd.value() == rev.value()

    def test_summary_key_surface(self):
        summary = EnergyLedger().summary()
        for key in TOTAL_KEYS + COUNT_KEYS:
            assert key in summary
        assert summary["total_energy_j"] == 0.0
        assert summary["ack_energy_share"] == 0.0
        assert summary["ack_airtime_share"] == 0.0


class TestSimulationIntegration:
    def _run(self, scheme, energy=None, seed=9, until_s=1.0):
        # wired_path: the energy hooks live in the netsim Link layer
        # (fleet shards model the AP as asymmetric wired bottlenecks
        # and account WLAN airtime analytically via the phy profile).
        sim = Simulator(seed=seed, energy=energy)
        path = wired_path(sim, 20e6, 0.03)
        conn = make_connection(sim, scheme, initial_rtt_s=0.03)
        conn.wire(path.forward, path.reverse)
        conn.start_bulk()
        sim.run(until=until_s)
        return conn.receiver.stats.bytes_delivered

    def test_link_hooks_feed_the_ledger(self):
        ledger = EnergyLedger(phy="802.11n")
        delivered = self._run("tcp-tack", energy=ledger)
        assert delivered > 0
        summary = ledger.summary()
        assert summary["flows_opened"] == 1
        assert summary["data_pkts"] > 100
        assert summary["ack_pkts"] > 0
        assert 0 < summary["ack_energy_j"] < summary["data_energy_j"]
        assert 0 < summary["ack_airtime_share"] < 0.5
        assert summary["feedback_bytes"] > 0
        assert summary["total_energy_j"] == pytest.approx(
            summary["data_energy_j"] + summary["ack_energy_j"]
            + summary["idle_energy_j"])

    def test_ledger_does_not_perturb_the_simulation(self):
        baseline = self._run("tcp-tack", energy=None)
        with_ledger = self._run("tcp-tack", energy=EnergyLedger())
        assert baseline == with_ledger

    def test_ack_scheme_energy_ordering(self):
        """The paper's claim in joules: TACK's sparse ACKs burn less
        radio energy than delayed ACKs, which burn less than
        per-packet ACKs."""
        by_scheme = {}
        for scheme in ("tcp-tack", "tcp-bbr", "tcp-bbr-perpacket"):
            ledger = EnergyLedger(phy="802.11n")
            self._run(scheme, energy=ledger)
            by_scheme[scheme] = ledger.summary()
        tack = by_scheme["tcp-tack"]
        delack = by_scheme["tcp-bbr"]
        perpkt = by_scheme["tcp-bbr-perpacket"]
        assert (tack["ack_pkts"] < delack["ack_pkts"]
                < perpkt["ack_pkts"])
        assert (tack["ack_energy_j"] < delack["ack_energy_j"]
                < perpkt["ack_energy_j"])
        assert (tack["ack_airtime_share"] < delack["ack_airtime_share"]
                < perpkt["ack_airtime_share"])

    def test_full_dcf_wlan_path_is_out_of_ledger_scope(self):
        """Documented scope: the hooks live in the netsim Link layer,
        so the packet-level DCF WLAN medium (repro.wlan Station) does
        not feed the ledger — fleet shards account WLAN airtime
        analytically through the phy profile instead."""
        ledger = EnergyLedger(phy="802.11n")
        sim = Simulator(seed=4, energy=ledger)
        path = wlan_path(sim, "802.11n", extra_rtt_s=0.03)
        conn = make_connection(sim, "tcp-tack", initial_rtt_s=0.03)
        conn.wire(path.forward, path.reverse)
        conn.start_bulk()
        sim.run(until=0.3)
        summary = ledger.summary()
        assert summary["data_pkts"] == 0
        assert summary["flows_opened"] == 1  # transport hooks still fire


class TestFleetIntegration:
    def _shard_result(self, scheme, seed=7, shard_index=0):
        from repro.fleet.campaign import FleetConfig, plan_shards
        from repro.fleet.shard import run_shard

        config = FleetConfig(schemes=(scheme,), shards_per_scheme=1,
                             seed=seed)
        config.workload.mean_arrival_hz = 12
        config.workload.duration_s = 2.0
        spec = plan_shards(config)[shard_index]
        return run_shard(spec.to_dict())

    def test_shard_reports_energy_block(self):
        result = self._shard_result("tcp-tack")
        energy = result["energy"]
        assert energy["phy"] == "802.11n"
        assert energy["power"] == "wavelan"
        assert energy["ack_energy_j"] > 0
        assert energy["data_airtime_s"] > energy["ack_airtime_s"] > 0
        assert 0 < energy["ack_airtime_share"] < 1
        for key in TOTAL_KEYS:
            assert key in energy["partials"]

    def test_aggregate_fold_order_insensitive(self):
        from repro.fleet.report import SchemeAggregate

        shards = [self._shard_result("tcp-tack"),
                  self._shard_result("tcp-bbr")]
        fwd = SchemeAggregate("mixed")
        rev = SchemeAggregate("mixed")
        for s in shards:
            fwd.fold(s)
        for s in reversed(shards):
            rev.fold(s)
        assert fwd.ack_energy_j() == rev.ack_energy_j()
        assert (fwd.energy_ack_airtime_share()
                == rev.energy_ack_airtime_share())

    def test_aggregate_tolerates_legacy_shards_without_energy(self):
        from repro.fleet.report import SchemeAggregate

        shard = self._shard_result("tcp-tack")
        legacy = dict(shard)
        legacy.pop("energy")
        agg = SchemeAggregate("legacy")
        agg.fold(legacy)
        assert agg.energy_shards == 0
        assert agg.ack_energy_j() == 0.0
