"""Cross-validation: the closed-form airtime model predicts the
simulated TCP-TACK goodput per standard.

This ties the two halves of the reproduction together — if either the
DCF simulator or the analytic model drifts, the comparison breaks.
"""

import pytest

from repro.analysis.airtime import ideal_goodput_bps, tack_equivalent_l
from repro.app.bulk import BulkFlow
from repro.netsim.engine import Simulator
from repro.netsim.paths import wlan_path
from repro.wlan.phy import PHY_PROFILES


@pytest.mark.parametrize("phy_name", ["802.11g", "802.11n"])
def test_airtime_model_predicts_tack_goodput(phy_name):
    """Measured TACK goodput lands within 15% of the model's
    prediction at its equivalent ACK ratio."""
    rtt = 0.08
    phy = PHY_PROFILES[phy_name]
    sat = phy.saturation_goodput_bps()
    eq_l = tack_equivalent_l(sat, rtt)
    predicted = ideal_goodput_bps(phy, eq_l)
    sim = Simulator(seed=5)
    path = wlan_path(sim, phy_name, extra_rtt_s=rtt)
    flow = BulkFlow(sim, path, "tcp-tack", initial_rtt_s=rtt)
    flow.start()
    sim.run(until=5.0)
    measured = flow.goodput_bps(start=1.5)
    assert measured == pytest.approx(predicted, rel=0.15)


def test_model_orders_policies_like_simulation():
    """The model's ranking of per-packet vs delayed vs TACK matches
    what end-to-end simulation produces on 802.11n."""
    phy = PHY_PROFILES["802.11n"]
    model = {
        "per-packet": ideal_goodput_bps(phy, 1),
        "delayed": ideal_goodput_bps(phy, 2),
        "tack": ideal_goodput_bps(
            phy, tack_equivalent_l(phy.saturation_goodput_bps(), 0.08)
        ),
    }
    assert model["per-packet"] <= model["delayed"] < model["tack"]
