"""Unit tests for the virtual clock and event engine."""

import pytest

from repro.netsim.clock import Clock
from repro.netsim.engine import Simulator


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now() == 0.0

    def test_custom_start(self):
        assert Clock(start=5.0).now() == 5.0

    def test_advance_to(self):
        c = Clock()
        c.advance_to(1.5)
        assert c.now() == 1.5

    def test_advance_by(self):
        c = Clock()
        c.advance_by(0.25)
        c.advance_by(0.25)
        assert c.now() == pytest.approx(0.5)

    def test_rewind_rejected(self):
        c = Clock(start=2.0)
        with pytest.raises(ValueError):
            c.advance_to(1.0)

    def test_negative_step_rejected(self):
        with pytest.raises(ValueError):
            Clock().advance_by(-0.1)


class TestScheduling:
    def test_call_in_fires_in_order(self, sim):
        fired = []
        sim.call_in(0.2, lambda: fired.append("b"))
        sim.call_in(0.1, lambda: fired.append("a"))
        sim.call_in(0.3, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_tie_broken_by_insertion_order(self, sim):
        fired = []
        for tag in ("first", "second", "third"):
            sim.call_at(1.0, lambda t=tag: fired.append(t))
        sim.run()
        assert fired == ["first", "second", "third"]

    def test_clock_advances_to_event_time(self, sim):
        times = []
        sim.call_in(0.5, lambda: times.append(sim.now()))
        sim.run()
        assert times == [pytest.approx(0.5)]

    def test_past_scheduling_rejected(self, sim):
        sim.call_in(0.1, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.call_at(0.05, lambda: None)

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.call_in(-1.0, lambda: None)

    def test_cancelled_event_skipped(self, sim):
        fired = []
        ev = sim.call_in(0.1, lambda: fired.append("x"))
        ev.cancel()
        sim.run()
        assert fired == []

    def test_cancel_mid_run(self, sim):
        fired = []
        later = sim.call_in(0.2, lambda: fired.append("later"))
        sim.call_in(0.1, later.cancel)
        sim.run()
        assert fired == []

    def test_nested_scheduling(self, sim):
        fired = []

        def outer():
            fired.append("outer")
            sim.call_in(0.1, lambda: fired.append("inner"))

        sim.call_in(0.1, outer)
        sim.run()
        assert fired == ["outer", "inner"]
        assert sim.now() == pytest.approx(0.2)


class TestRun:
    def test_run_until_stops_before_later_events(self, sim):
        fired = []
        sim.call_in(1.0, lambda: fired.append("early"))
        sim.call_in(3.0, lambda: fired.append("late"))
        sim.run(until=2.0)
        assert fired == ["early"]
        assert sim.now() == pytest.approx(2.0)

    def test_run_until_advances_clock_even_when_idle(self, sim):
        sim.run(until=7.0)
        assert sim.now() == pytest.approx(7.0)

    def test_resume_after_until(self, sim):
        fired = []
        sim.call_in(3.0, lambda: fired.append("late"))
        sim.run(until=2.0)
        sim.run()
        assert fired == ["late"]

    def test_max_events(self, sim):
        fired = []
        for i in range(10):
            sim.call_in(0.1 * (i + 1), lambda i=i: fired.append(i))
        sim.run(max_events=4)
        assert fired == [0, 1, 2, 3]

    def test_step(self, sim):
        fired = []
        sim.call_in(0.1, lambda: fired.append(1))
        assert sim.step() is True
        assert sim.step() is False
        assert fired == [1]

    def test_events_fired_counter(self, sim):
        for i in range(5):
            sim.call_in(0.1, lambda: None)
        sim.run()
        assert sim.events_fired == 5

    def test_pending_excludes_cancelled(self, sim):
        ev = sim.call_in(1.0, lambda: None)
        sim.call_in(2.0, lambda: None)
        ev.cancel()
        assert sim.pending() == 1


class TestDeterminism:
    def test_same_seed_same_draws(self):
        a = Simulator(seed=7)
        b = Simulator(seed=7)
        assert [a.rng.random() for _ in range(5)] == [
            b.rng.random() for _ in range(5)
        ]

    def test_fork_rng_stable(self):
        a = Simulator(seed=7).fork_rng("x")
        b = Simulator(seed=7).fork_rng("x")
        assert a.random() == b.random()

    def test_fork_rng_label_differs(self):
        s = Simulator(seed=7)
        assert s.fork_rng("x").random() != s.fork_rng("x").random()
