"""Unit tests for the congestion controllers."""

import pytest

from repro.cc.base import RateSample
from repro.cc.bbr import BBR, DRAIN, PROBE_BW, PROBE_RTT, STARTUP
from repro.cc.cubic import Cubic
from repro.cc.reno import NewReno
from repro.cc.vegas import Vegas
from repro.netsim.packet import MSS


def fb(now, acked=MSS, lost=0, rtt=0.05, rate=None, in_flight=10 * MSS,
       app_limited=False, min_rtt=None):
    return RateSample(
        now=now,
        newly_acked=acked,
        newly_lost=lost,
        rtt=rtt,
        delivery_rate_bps=rate,
        in_flight=in_flight,
        is_app_limited=app_limited,
        min_rtt=min_rtt,
    )


class TestNewReno:
    def test_slow_start_doubles(self):
        cc = NewReno()
        start = cc.cwnd_bytes()
        cc.on_feedback(fb(0.1, acked=start))
        assert cc.cwnd_bytes() == 2 * start

    def test_loss_halves(self):
        cc = NewReno()
        before = cc.cwnd_bytes()
        cc.on_feedback(fb(1.0, acked=0, lost=MSS))
        assert cc.cwnd_bytes() == pytest.approx(before / 2, rel=0.01)

    def test_loss_guard_prevents_double_cut(self):
        cc = NewReno()
        cc.on_feedback(fb(1.0, acked=0, lost=MSS))
        after_first = cc.cwnd_bytes()
        cc.on_feedback(fb(1.001, acked=0, lost=MSS))
        assert cc.cwnd_bytes() == after_first

    def test_congestion_avoidance_linear(self):
        cc = NewReno()
        cc.on_feedback(fb(0.5, acked=0, lost=MSS))  # exit slow start
        w = cc.cwnd_bytes()
        for i in range(40):
            cc.on_feedback(fb(1.0 + i * 0.05, acked=MSS))
        # Growth much slower than slow start (one MSS per window).
        assert cc.cwnd_bytes() < w + 45 * MSS / 4

    def test_rto_collapses_window(self):
        cc = NewReno()
        cc.on_rto(1.0)
        assert cc.cwnd_bytes() == MSS

    def test_pacing_rate_positive(self):
        cc = NewReno()
        cc.on_feedback(fb(0.1))
        assert cc.pacing_rate_bps() > 0


class TestCubic:
    def test_loss_multiplies_by_beta(self):
        cc = Cubic()
        before = cc.cwnd_bytes()
        cc.on_feedback(fb(1.0, acked=0, lost=MSS))
        assert cc.cwnd_bytes() == pytest.approx(before * 0.7, rel=0.01)

    def test_recovers_toward_w_max(self):
        cc = Cubic()
        # grow, lose, then recover
        for i in range(20):
            cc.on_feedback(fb(0.1 + i * 0.02, acked=10 * MSS))
        cwnd_before_loss_bytes = cc.cwnd_bytes()
        cc.on_feedback(fb(1.0, acked=0, lost=MSS))
        for i in range(200):
            cc.on_feedback(fb(1.1 + i * 0.05, acked=10 * MSS))
        assert cc.cwnd_bytes() > 0.9 * cwnd_before_loss_bytes

    def test_rto_resets(self):
        cc = Cubic()
        cc.on_rto(1.0)
        assert cc.cwnd_bytes() == MSS

    def test_fast_convergence_lowers_w_max(self):
        cc = Cubic()
        for i in range(20):
            cc.on_feedback(fb(0.1 + i * 0.02, acked=10 * MSS))
        cc.on_feedback(fb(0.9, acked=0, lost=MSS))
        w_max_1 = cc._w_max
        cc.on_feedback(fb(1.2, acked=0, lost=MSS))
        assert cc._w_max < w_max_1


class TestVegas:
    def test_increases_when_below_alpha(self):
        cc = Vegas()
        cc._ssthresh = 0  # force congestion avoidance
        w = cc.cwnd_bytes()
        # rtt == base rtt -> diff = 0 < alpha -> +1 MSS per RTT
        for i in range(5):
            cc.on_feedback(fb(0.2 * (i + 1), acked=MSS, rtt=0.1))
        assert cc.cwnd_bytes() > w

    def test_decreases_when_queueing(self):
        cc = Vegas(alpha_pkts=1.0, beta_pkts=2.0)
        cc._ssthresh = 0
        cc.on_feedback(fb(0.1, acked=MSS, rtt=0.05))  # base
        w = cc.cwnd_bytes()
        # rtt inflates to 4x base -> diff >> beta -> decrease
        for i in range(10):
            cc.on_feedback(fb(0.5 + 0.3 * i, acked=MSS, rtt=0.2))
        assert cc.cwnd_bytes() < w

    def test_validation(self):
        with pytest.raises(ValueError):
            Vegas(alpha_pkts=4.0, beta_pkts=2.0)


class TestBBR:
    def test_starts_in_startup(self):
        assert BBR().state == STARTUP

    def test_startup_exits_on_bw_plateau(self):
        cc = BBR(initial_rtt_s=0.05)
        t = 0.0
        for _ in range(40):
            t += 0.05
            cc.on_feedback(fb(t, rate=50e6, rtt=0.05, in_flight=50 * MSS))
        assert cc.state in (DRAIN, PROBE_BW)
        assert cc.filled_pipe

    def test_reaches_probe_bw_when_drained(self):
        cc = BBR(initial_rtt_s=0.05)
        t = 0.0
        for _ in range(60):
            t += 0.05
            cc.on_feedback(fb(t, rate=50e6, rtt=0.05, in_flight=2 * MSS))
        assert cc.state == PROBE_BW

    def test_bw_estimate_tracks_max_sample(self):
        cc = BBR(initial_rtt_s=0.05)
        cc.on_feedback(fb(0.05, rate=30e6))
        cc.on_feedback(fb(0.10, rate=50e6))
        cc.on_feedback(fb(0.15, rate=40e6))
        assert cc.bw_estimate() == pytest.approx(50e6)

    def test_app_limited_sample_cannot_lower_estimate(self):
        cc = BBR(initial_rtt_s=0.05)
        cc.on_feedback(fb(0.05, rate=50e6))
        cc.on_feedback(fb(0.10, rate=1e6, app_limited=True))
        assert cc.bw_estimate() == pytest.approx(50e6)

    def test_app_limited_sample_can_raise_estimate(self):
        cc = BBR(initial_rtt_s=0.05)
        cc.on_feedback(fb(0.05, rate=10e6))
        cc.on_feedback(fb(0.10, rate=50e6, app_limited=True))
        assert cc.bw_estimate() == pytest.approx(50e6)

    def test_probe_rtt_entered_when_min_rtt_stale(self):
        cc = BBR(initial_rtt_s=0.05, min_rtt_window=1.0)
        t = 0.0
        # Establish, then feed only larger RTTs past the window.
        cc.on_feedback(fb(0.01, rtt=0.05, rate=50e6))
        for _ in range(100):
            t += 0.05
            cc.on_feedback(fb(t, rtt=0.1, rate=50e6, in_flight=2 * MSS))
            if cc.state == PROBE_RTT:
                break
        assert cc.state == PROBE_RTT
        assert cc.cwnd_bytes() == 4 * MSS

    def test_external_min_rtt_accepted(self):
        cc = BBR(initial_rtt_s=0.5)
        cc.on_feedback(fb(0.1, rate=50e6, rtt=None, min_rtt=0.02))
        assert cc.min_rtt() == pytest.approx(0.02)

    def test_pacing_rate_scales_with_gain(self):
        cc = BBR(initial_rtt_s=0.05)
        cc.on_feedback(fb(0.05, rate=50e6))
        assert cc.pacing_rate_bps() == pytest.approx(2.885 * cc.bw_estimate(), rel=0.01)

    def test_aggregation_compensation_grows_cwnd(self):
        cc = BBR(initial_rtt_s=0.05)
        t = 0.0
        for _ in range(50):
            t += 0.05
            cc.on_feedback(fb(t, rate=50e6, rtt=0.05, in_flight=10 * MSS))
        base = cc.bdp_bytes(2.0)
        # A large burst of acked bytes in a short span -> extra_acked.
        cc.on_feedback(fb(t + 0.001, acked=40 * MSS, rate=50e6, rtt=0.05))
        assert cc.cwnd_bytes() > base

    def test_no_compensation_when_disabled(self):
        cc = BBR(initial_rtt_s=0.05, aggregation_compensation=False)
        cc.on_feedback(fb(0.05, acked=100 * MSS, rate=50e6))
        assert cc.extra_acked_bytes() == 0

    def test_rto_shrinks_cwnd_keeps_bw(self):
        cc = BBR(initial_rtt_s=0.05)
        cc.on_feedback(fb(0.05, rate=50e6))
        cc.on_rto(0.1)
        assert cc.cwnd_bytes() == 4 * MSS
        assert cc.bw_estimate() == pytest.approx(50e6)
