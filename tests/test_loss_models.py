"""Unit tests for loss models."""

import random

import pytest

from repro.netsim.loss import (
    BernoulliLoss,
    BurstLoss,
    GilbertElliottLoss,
    NoLoss,
    PatternLoss,
)
from repro.netsim.packet import make_data_packet


def _pkt():
    return make_data_packet(0, 1)


class TestNoLoss:
    def test_never_drops(self):
        model = NoLoss()
        assert not any(model.should_drop(_pkt(), t * 0.1) for t in range(100))


class TestBernoulli:
    def test_zero_rate_never_drops(self):
        model = BernoulliLoss(0.0, random.Random(1))
        assert not any(model.should_drop(_pkt(), 0.0) for _ in range(1000))

    def test_one_rate_always_drops(self):
        model = BernoulliLoss(1.0, random.Random(1))
        assert all(model.should_drop(_pkt(), 0.0) for _ in range(100))

    def test_empirical_rate(self):
        model = BernoulliLoss(0.1, random.Random(7))
        drops = sum(model.should_drop(_pkt(), 0.0) for _ in range(20_000))
        assert 0.08 < drops / 20_000 < 0.12

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            BernoulliLoss(1.5, random.Random(1))
        with pytest.raises(ValueError):
            BernoulliLoss(-0.1, random.Random(1))

    def test_rng_is_required(self):
        with pytest.raises(TypeError):
            BernoulliLoss(0.1)
        with pytest.raises(TypeError):
            BernoulliLoss(0.1, rng=None)

    def test_int_seed_accepted(self):
        a = BernoulliLoss(0.5, 42)
        b = BernoulliLoss(0.5, random.Random(42))
        seq_a = [a.should_drop(_pkt(), 0.0) for _ in range(200)]
        seq_b = [b.should_drop(_pkt(), 0.0) for _ in range(200)]
        assert seq_a == seq_b

    def test_independent_rngs_diverge(self):
        # The shared-module-seed footgun this API change removed: two
        # models built from different seeds must not march in lockstep.
        a = BernoulliLoss(0.5, random.Random(1))
        b = BernoulliLoss(0.5, random.Random(2))
        seq_a = [a.should_drop(_pkt(), 0.0) for _ in range(200)]
        seq_b = [b.should_drop(_pkt(), 0.0) for _ in range(200)]
        assert seq_a != seq_b


class TestGilbertElliott:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GilbertElliottLoss(p_gb=2.0, p_bg=0.5)

    def test_stays_good_when_p_gb_zero(self):
        model = GilbertElliottLoss(p_gb=0.0, p_bg=0.5, rng=random.Random(3))
        assert not any(model.should_drop(_pkt(), 0.0) for _ in range(500))

    def test_bursts_occur(self):
        model = GilbertElliottLoss(p_gb=0.05, p_bg=0.3, rng=random.Random(3))
        outcomes = [model.should_drop(_pkt(), 0.0) for _ in range(5000)]
        # Consecutive drops must appear far more often than independent
        # drops at the same average rate would produce.
        pairs = sum(1 for a, b in zip(outcomes, outcomes[1:]) if a and b)
        rate = sum(outcomes) / len(outcomes)
        independent_pairs = rate * rate * len(outcomes)
        assert pairs > 2 * independent_pairs

    def test_steady_state_loss_formula(self):
        model = GilbertElliottLoss(p_gb=0.1, p_bg=0.4, rng=random.Random(5))
        expected = 0.1 / (0.1 + 0.4)
        assert model.steady_state_loss() == pytest.approx(expected)
        drops = sum(model.should_drop(_pkt(), 0.0) for _ in range(50_000))
        assert abs(drops / 50_000 - expected) < 0.02

    def test_reset_restores_good_state(self):
        model = GilbertElliottLoss(p_gb=1.0, p_bg=0.0, rng=random.Random(1))
        model.should_drop(_pkt(), 0.0)
        assert model.in_bad_state
        model.reset()
        assert not model.in_bad_state

    def test_reset_replays_identical_sequence(self):
        model = GilbertElliottLoss(p_gb=0.1, p_bg=0.3, rng=random.Random(9))
        first = [model.should_drop(_pkt(), 0.0) for _ in range(500)]
        model.reset()
        second = [model.should_drop(_pkt(), 0.0) for _ in range(500)]
        assert first == second

    def test_rng_is_required(self):
        with pytest.raises(TypeError):
            GilbertElliottLoss(p_gb=0.1, p_bg=0.3)

    def test_empirical_convergence_with_partial_loss_probs(self):
        # good_loss/bad_loss < 1 scale the state loss rates; long-run
        # loss is pi_bad*bad_loss + pi_good*good_loss.
        model = GilbertElliottLoss(p_gb=0.1, p_bg=0.4, bad_loss=0.5,
                                   good_loss=0.01, rng=random.Random(11))
        pi_bad = 0.1 / (0.1 + 0.4)
        expected = pi_bad * 0.5 + (1 - pi_bad) * 0.01
        assert model.steady_state_loss() == pytest.approx(expected)
        drops = sum(model.should_drop(_pkt(), 0.0) for _ in range(50_000))
        assert abs(drops / 50_000 - expected) < 0.02


class TestBurstLoss:
    def test_drops_inside_window_only(self):
        model = BurstLoss([(1.0, 0.5)])
        assert not model.should_drop(_pkt(), 0.99)
        assert model.should_drop(_pkt(), 1.0)
        assert model.should_drop(_pkt(), 1.49)
        assert not model.should_drop(_pkt(), 1.5)

    def test_multiple_windows(self):
        model = BurstLoss([(3.0, 1.0), (1.0, 0.5)])
        assert model.should_drop(_pkt(), 1.2)
        assert not model.should_drop(_pkt(), 2.0)
        assert model.should_drop(_pkt(), 3.5)

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            BurstLoss([(1.0, 0.0)])


class TestPatternLoss:
    def test_drops_exact_indices(self):
        model = PatternLoss([0, 2])
        results = [model.should_drop(_pkt(), 0.0) for _ in range(4)]
        assert results == [True, False, True, False]

    def test_reset(self):
        model = PatternLoss([0])
        model.should_drop(_pkt(), 0.0)
        model.reset()
        assert model.should_drop(_pkt(), 0.0)
        assert model.seen == 1
