"""Property-based tests over the transport machinery (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.loss_detect import PktSeqTracker
from repro.core.owd_timing import ReceiverOwdTracker
from repro.netsim.engine import Simulator
from repro.netsim.packet import MSS, make_data_packet
from repro.ack import PerPacketAck
from repro.transport.receiver import TransportReceiver


class _NullPort:
    def send(self, packet):
        return True

    def connect(self, sink):
        pass


@given(st.permutations(list(range(12))))
@settings(max_examples=60, deadline=None)
def test_reassembly_delivers_everything_once(order):
    """Any arrival permutation of 12 segments yields exactly the full
    stream, delivered in order."""
    sim = Simulator(seed=1)
    rx = TransportReceiver(sim, PerPacketAck())
    rx.connect(_NullPort())
    delivered = []
    rx.on_deliver(lambda n, t: delivered.append(n))
    for idx in order:
        pkt = make_data_packet(idx * MSS, idx + 1)
        pkt.sent_at = 0.0
        rx.on_packet(pkt)
    assert sum(delivered) == 12 * MSS
    assert rx.delivered_ptr == 12 * MSS
    assert rx.holb_blocked_bytes() == 0


@given(st.permutations(list(range(12))), st.sets(st.integers(0, 11)))
@settings(max_examples=60, deadline=None)
def test_reassembly_with_duplicates(order, dup_set):
    """Duplicates never inflate delivery."""
    sim = Simulator(seed=1)
    rx = TransportReceiver(sim, PerPacketAck())
    rx.connect(_NullPort())
    schedule = list(order) + [i for i in order if i in dup_set]
    pkt_seq = 1
    for idx in schedule:
        pkt = make_data_packet(idx * MSS, pkt_seq)
        pkt.sent_at = 0.0
        pkt_seq += 1
        rx.on_packet(pkt)
    assert rx.delivered_ptr == 12 * MSS
    assert rx.stats.bytes_delivered == 12 * MSS


@given(st.lists(st.integers(1, 100), min_size=1, max_size=100, unique=True))
@settings(max_examples=100)
def test_pkt_tracker_holes_match_brute_force(arrivals):
    t = PktSeqTracker()
    for p in sorted(arrivals):
        t.on_packet(p)
    first, largest = min(arrivals), max(arrivals)
    # Holes before the first arrival are never counted (the tracker
    # treats the first packet as the numbering baseline).
    expected_holes = {p for p in range(first + 1, largest) if p not in set(arrivals)}
    assert t.outstanding_holes == len(expected_holes)
    assert t.largest_seen == largest


@given(st.lists(st.integers(1, 60), min_size=2, max_size=60, unique=True))
@settings(max_examples=100)
def test_gap_events_cover_every_hole_exactly_once(arrivals):
    """Ascending arrivals: the union of gap-event ranges equals the
    hole set, with no overlaps."""
    t = PktSeqTracker()
    reported = []
    for p in sorted(arrivals):
        ev = t.on_packet(p)
        if ev is not None:
            lo, hi = ev.missing_range()
            reported.extend(range(lo, hi + 1))
    first = min(arrivals)
    largest = max(arrivals)
    expected = [p for p in range(first + 1, largest) if p not in set(arrivals)]
    assert sorted(reported) == expected
    assert len(set(reported)) == len(reported)


@given(st.lists(st.tuples(st.floats(0, 10), st.floats(0.001, 1.0)),
                min_size=1, max_size=100))
@settings(max_examples=100)
def test_owd_reference_is_interval_minimum(pairs):
    """Advanced mode picks exactly the min-OWD packet of the interval."""
    tracker = ReceiverOwdTracker(mode="advanced")
    best = None
    t_now = 0.0
    for depart, owd in pairs:
        t_now += 0.01
        arrival = depart + owd
        tracker.on_packet(depart, arrival)
        if best is None or owd < best:
            best = owd
    ref = tracker.take_reference()
    assert ref is not None
    assert abs(ref.owd - best) < 1e-12


@given(st.integers(1, 40), st.integers(0, 39))
@settings(max_examples=60, deadline=None)
def test_single_drop_any_position_recovers(total_mss, drop_idx):
    """Drop any one packet of a short TACK transfer; it must complete
    without RTO (IACK pull or tail flush handles it)."""
    from repro.netsim.loss import PatternLoss
    import sys
    sys.path.insert(0, "tests")
    from conftest import build_wired_connection

    if drop_idx >= total_mss:
        drop_idx = total_mss - 1
    sim = Simulator(seed=3)
    conn, _ = build_wired_connection(
        sim, "tcp-tack", rate_bps=20e6, rtt_s=0.02,
        forward_loss=PatternLoss([drop_idx]),
        queue_bytes=500_000,
    )
    conn.start_transfer(total_mss * MSS)
    sim.run(until=20.0)
    assert conn.completed
    assert conn.receiver.stats.bytes_delivered == total_mss * MSS
