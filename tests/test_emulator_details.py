"""Extra emulator and queue behaviors: queueing delay, ordering under
load, and the path-handle helpers."""

import pytest

from repro.netsim.emulator import EmulatedPath, PathConfig
from repro.netsim.packet import make_data_packet
from repro.netsim.paths import wired_path


class TestQueueingDelay:
    def test_delay_grows_with_backlog(self, sim):
        """Packets behind a backlog arrive later by exactly their
        serialization share."""
        path = EmulatedPath(sim, PathConfig(12e6, 0.0, queue_bytes=10_000_000))
        arrivals = []
        path.connect(lambda p: arrivals.append((p.pkt_seq, sim.now())),
                     lambda p: None)
        for i in range(20):
            path.send_forward(make_data_packet(i * 1500, i + 1))
        sim.run()
        per_pkt = 1518 * 8 / 12e6
        for (seq_a, t_a), (seq_b, t_b) in zip(arrivals, arrivals[1:]):
            assert t_b - t_a == pytest.approx(per_pkt)

    def test_fifo_order_preserved(self, sim):
        path = EmulatedPath(sim, PathConfig(5e6, 0.01, queue_bytes=10_000_000))
        order = []
        path.connect(lambda p: order.append(p.pkt_seq), lambda p: None)
        for i in range(50):
            path.send_forward(make_data_packet(i * 1500, i + 1))
        sim.run()
        assert order == sorted(order)

    def test_overflow_drops_tail_not_head(self, sim):
        path = EmulatedPath(sim, PathConfig(1e6, 0.0, queue_bytes=6_000))
        got = []
        path.connect(lambda p: got.append(p.pkt_seq), lambda p: None)
        for i in range(10):
            path.send_forward(make_data_packet(i * 1500, i + 1))
        sim.run()
        # Whatever survived is a prefix-ordered subset; the earliest
        # enqueued packets survive (droptail).
        assert got == sorted(got)
        assert got[0] == 1


class TestPathHandleHelpers:
    def test_wired_path_exposes_wan(self, sim):
        handle = wired_path(sim, 10e6, 0.02)
        assert handle.wan is not None
        assert handle.medium is None

    def test_min_queue_floor(self, sim):
        # Tiny bdp paths still get a usable queue (floor 64 kB).
        handle = wired_path(sim, 1e6, 0.001)
        assert handle.wan.forward.queue.capacity_bytes >= 64 * 1024

    def test_observed_loss_rate_counter(self, sim):
        from repro.netsim.loss import BernoulliLoss

        handle = wired_path(
            sim, 100e6, 0.0,
            queue_bytes=10_000_000,  # no overflow: isolate model drops
            forward_loss=BernoulliLoss(0.5, sim.fork_rng("x")),
        )
        handle.forward.connect(lambda p: None)
        for i in range(2000):
            handle.forward.send(make_data_packet(i * 1500, i + 1))
        sim.run()
        assert handle.forward.loss_rate_observed == pytest.approx(0.5, abs=0.05)
