"""Unit tests for feedback structures and wire-size accounting."""

import pytest

from repro.netsim.packet import ACK_PACKET_SIZE, DATA_PACKET_SIZE, PacketType
from repro.transport.feedback import (
    BYTES_PER_BLOCK,
    FREE_BLOCKS,
    AckFeedback,
    feedback_wire_bytes,
    make_feedback_packet,
)


class TestAckFeedback:
    def test_defaults(self):
        fb = AckFeedback(cum_ack=100, awnd=1000)
        assert fb.sack_blocks == []
        assert fb.unacked_blocks == []
        assert fb.pull_pkt_range is None
        assert fb.block_count() == 0

    def test_block_count_sums_both_lists(self):
        fb = AckFeedback(
            cum_ack=0, awnd=0,
            sack_blocks=[(0, 1), (2, 3)],
            unacked_blocks=[(4, 5)],
        )
        assert fb.block_count() == 3

    def test_repr_is_informative(self):
        fb = AckFeedback(cum_ack=1500, awnd=1000, reason="loss")
        assert "loss" in repr(fb)
        assert "1500" in repr(fb)


class TestWireSize:
    def test_free_blocks_ride_base_ack(self):
        fb = AckFeedback(cum_ack=0, awnd=0,
                         sack_blocks=[(i, i + 1) for i in range(FREE_BLOCKS)])
        assert feedback_wire_bytes(fb) == ACK_PACKET_SIZE

    def test_each_extra_block_costs_eight_bytes(self):
        fb = AckFeedback(cum_ack=0, awnd=0,
                         sack_blocks=[(i, i + 1) for i in range(FREE_BLOCKS + 5)])
        assert feedback_wire_bytes(fb) == ACK_PACKET_SIZE + 5 * BYTES_PER_BLOCK

    def test_mtu_cap(self):
        fb = AckFeedback(cum_ack=0, awnd=0,
                         unacked_blocks=[(i, i + 1) for i in range(500)])
        assert feedback_wire_bytes(fb) == DATA_PACKET_SIZE


class TestMakeFeedbackPacket:
    @pytest.mark.parametrize("kind", [PacketType.ACK, PacketType.TACK,
                                      PacketType.IACK])
    def test_kind_preserved(self, kind):
        fb = AckFeedback(cum_ack=0, awnd=0)
        pkt = make_feedback_packet(kind, fb)
        assert pkt.kind is kind
        assert pkt.meta["fb"] is fb

    def test_flow_id_stamped(self):
        pkt = make_feedback_packet(PacketType.TACK,
                                   AckFeedback(cum_ack=0, awnd=0), flow_id=7)
        assert pkt.flow_id == 7

    def test_size_follows_blocks(self):
        rich = AckFeedback(cum_ack=0, awnd=0,
                           unacked_blocks=[(i, i + 1) for i in range(20)])
        poor = AckFeedback(cum_ack=0, awnd=0)
        assert (make_feedback_packet(PacketType.TACK, rich).size
                > make_feedback_packet(PacketType.TACK, poor).size)
