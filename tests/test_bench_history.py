"""repro.bench: BenchRecord schema, history files, the regression gate,
and the record/compare/gate CLI surface."""

import json

import pytest

from repro.bench import (
    BenchRecord,
    append_records,
    compare_series,
    file_sha256,
    gate_history,
    git_revision,
    load_history,
    machine_fingerprint,
)
from repro.profile.cli import infer_better, main


def rec(value, metric="wall_s", name="demo", better="lower", machine=None,
        unit="s"):
    r = BenchRecord.make(name, metric, value, unit, better=better)
    if machine is not None:
        r.machine = {"fingerprint": machine}
    return r


class TestBenchRecord:
    def test_make_stamps_provenance(self):
        r = BenchRecord.make("engine", "wall_s", 1.25, "s", better="lower")
        assert r.recorded_unix > 0
        assert r.machine["fingerprint"] == machine_fingerprint()
        assert r.git_rev  # short hex or "unknown", never empty

    def test_round_trips_through_dict(self):
        r = BenchRecord.make("engine", "wall_s", 1.25, "s", better="lower",
                             meta={"rounds": 3})
        back = BenchRecord.from_dict(json.loads(r.to_json_line()))
        assert back == r

    def test_rejects_bad_direction(self):
        with pytest.raises(ValueError):
            BenchRecord(name="x", metric="m", value=1.0, unit="",
                        better="sideways")

    def test_from_dict_rejects_wrong_schema(self):
        doc = json.loads(rec(1.0).to_json_line())
        doc["schema"] = "other"
        with pytest.raises(ValueError):
            BenchRecord.from_dict(doc)

    def test_git_revision_of_this_repo(self):
        sha = git_revision(__file__)
        assert sha != "unknown"
        int(sha, 16)  # short hex

    def test_file_sha256(self, tmp_path):
        p = tmp_path / "f"
        p.write_bytes(b"abc")
        assert file_sha256(str(p)) == (
            "ba7816bf8f01cfea414140de5dae2223"
            "b00361a396177a9cb410ff61f20015ad")


class TestHistoryIo:
    def test_append_and_load_round_trip(self, tmp_path):
        root = str(tmp_path / "hist")
        records = [rec(1.0), rec(1.1),
                   rec(5.0, name="other", metric="events_per_s",
                       better="higher", unit="")]
        assert append_records(root, records) == 3
        history = load_history(root)
        assert len(history) == 3
        assert history.skipped == 0
        assert history.records[:2] == records[:2]
        assert set(history.series()) == {("demo", "wall_s"),
                                         ("other", "events_per_s")}

    def test_one_file_per_bench_name(self, tmp_path):
        root = str(tmp_path / "hist")
        append_records(root, [rec(1.0), rec(2.0, name="other")])
        assert sorted(p.name for p in (tmp_path / "hist").iterdir()) == \
            ["demo.jsonl", "other.jsonl"]

    def test_corrupt_lines_skipped_not_fatal(self, tmp_path):
        root = tmp_path / "hist"
        append_records(str(root), [rec(1.0)])
        with open(root / "demo.jsonl", "a") as fh:
            fh.write("not json\n")
            fh.write('{"schema": "other"}\n')
        history = load_history(str(root))
        assert len(history) == 1
        assert history.skipped == 2

    def test_missing_root_is_empty(self, tmp_path):
        history = load_history(str(tmp_path / "nope"))
        assert len(history) == 0

    def test_load_single_name(self, tmp_path):
        root = str(tmp_path / "hist")
        append_records(root, [rec(1.0), rec(2.0, name="other")])
        history = load_history(root, name="other")
        assert [r.name for r in history.records] == ["other"]


def history_of(values, tmp_path, **kwargs):
    root = str(tmp_path / "hist")
    append_records(root, [rec(v, **kwargs) for v in values])
    return load_history(root)


class TestGate:
    def test_flat_series_passes(self, tmp_path):
        history = history_of([1.0, 1.02, 0.98, 1.01, 0.99], tmp_path)
        findings, passed = gate_history(history)
        assert passed
        assert [f.status for f in findings] == ["ok"]

    def test_regression_fails(self, tmp_path):
        history = history_of([1.0, 1.0, 1.0, 1.5], tmp_path)
        findings, passed = gate_history(history)
        assert not passed
        f = findings[0]
        assert f.status == "regressed" and f.failed
        assert f.baseline == pytest.approx(1.0)
        assert f.change_pct == pytest.approx(50.0)

    def test_improvement_never_fails(self, tmp_path):
        history = history_of([1.0, 1.0, 1.0, 0.5], tmp_path)
        findings, passed = gate_history(history)
        assert passed
        assert findings[0].status == "improved"

    def test_higher_is_better_direction(self, tmp_path):
        worse = history_of([100, 100, 100, 50], tmp_path,
                           metric="events_per_s", better="higher", unit="")
        findings, passed = gate_history(worse)
        assert not passed and findings[0].status == "regressed"

    def test_within_noise_band_is_ok(self, tmp_path):
        history = history_of([1.0, 1.0, 1.0, 1.05], tmp_path)
        findings, passed = gate_history(history, noise_pct=10.0)
        assert passed and findings[0].status == "ok"

    def test_insufficient_history_passes_with_warning(self, tmp_path):
        history = history_of([1.0, 1.5], tmp_path)
        findings, passed = gate_history(history, min_records=3)
        assert passed
        assert findings[0].status == "insufficient-history"

    def test_pct_unit_band_is_absolute_points(self, tmp_path):
        # Overhead-style metrics live near zero, where a relative band
        # collapses to nothing; pct-unit series use noise_pct as
        # absolute percentage points instead.  Baseline median 1.5:
        # +7.5 points stays inside a 10-point band, +11.5 regresses.
        history = history_of(
            [1.0, 2.0, 1.5, 9.0], tmp_path, metric="ok_pct", unit="pct")
        findings, passed = gate_history(history, noise_pct=10.0)
        assert passed and findings[0].status == "ok"
        history = history_of(
            [1.0, 2.0, 1.5, 13.0], tmp_path, metric="bad_pct", unit="pct")
        findings, passed = gate_history(history, noise_pct=10.0)
        bad = [f for f in findings if f.metric == "bad_pct"]
        assert not passed and bad[0].status == "regressed"

    def test_no_direction_metric_never_fails(self, tmp_path):
        history = history_of([1.0, 1.0, 1.0, 99.0], tmp_path, better=None)
        findings, passed = gate_history(history)
        assert passed
        assert findings[0].status == "no-direction"

    def test_cross_machine_records_filtered(self, tmp_path):
        root = str(tmp_path / "hist")
        append_records(root, [rec(9.0, machine="aaaa"),
                              rec(9.0, machine="aaaa"),
                              rec(9.0, machine="aaaa"),
                              rec(1.0, machine="bbbb"),
                              rec(1.0, machine="bbbb"),
                              rec(1.0, machine="bbbb"),
                              rec(1.0, machine="bbbb")])
        findings, passed = gate_history(load_history(root))
        # Same-machine view: flat 1.0 series from "bbbb"; the 9.0
        # records from "aaaa" would otherwise mask a regression or
        # fabricate one.
        assert passed
        assert findings[0].status == "ok"
        assert findings[0].window_n == 3

        findings, _ = gate_history(load_history(root), same_machine=False)
        assert findings[0].window_n == 5  # foreign records leak back in

    def test_window_bounds_baseline(self, tmp_path):
        history = history_of([9.0] * 10 + [1.0, 1.0, 1.0, 1.0], tmp_path)
        findings, passed = gate_history(history, window=3)
        assert passed and findings[0].status == "ok"


class TestCli:
    def test_record_then_gate_round_trip(self, tmp_path, capsys):
        hist = str(tmp_path / "hist")
        for v in ("1.0", "1.02", "0.98", "1.01"):
            assert main(["record", "--history", hist, "--name", "demo",
                         "--metric", "wall_s", "--value", v, "--unit", "s",
                         "--better", "lower"]) == 0
        capsys.readouterr()
        assert main(["gate", "--history", hist]) == 0
        assert "ok" in capsys.readouterr().out
        # Loader sees exactly what record wrote (JSONL schema intact).
        history = load_history(hist)
        assert [r.value for r in history.records] == [1.0, 1.02, 0.98, 1.01]
        assert all(r.better == "lower" for r in history.records)

    def test_gate_exit_1_on_regressed_history(self, tmp_path, capsys):
        hist = str(tmp_path / "hist")
        append_records(hist, [rec(v) for v in (1.0, 1.0, 1.0, 1.5)])
        assert main(["gate", "--history", hist]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_gate_warn_only_forces_exit_0(self, tmp_path, capsys):
        hist = str(tmp_path / "hist")
        append_records(hist, [rec(v) for v in (1.0, 1.0, 1.0, 1.5)])
        assert main(["gate", "--history", hist, "--warn-only"]) == 0

    def test_gate_empty_history_passes(self, tmp_path, capsys):
        assert main(["gate", "--history", str(tmp_path / "none")]) == 0
        assert "nothing to gate" in capsys.readouterr().out

    def test_compare_json_document(self, tmp_path, capsys):
        hist = str(tmp_path / "hist")
        append_records(hist, [rec(v) for v in (1.0, 1.0, 1.0, 1.2)])
        assert main(["compare", "--history", hist, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["records"] == 4
        assert doc["series"][0]["status"] == "regressed"
        assert doc["passed"] is None  # compare never gates

    def test_compare_empty_history_exits_2(self, tmp_path, capsys):
        assert main(["compare", "--history", str(tmp_path / "none")]) == 2
        assert "no bench history" in capsys.readouterr().err

    def test_record_from_bench_json(self, tmp_path, capsys):
        doc = {"bench": "telemetry_overhead",
               "config": {"rounds": 3},
               "metrics": {"off_s": 0.5, "memory_overhead_pct": 2.0,
                           "events_per_connection_second": 4000},
               "timestamp": 0}
        src = tmp_path / "BENCH_telemetry.json"
        src.write_text(json.dumps(doc))
        hist = str(tmp_path / "hist")
        assert main(["record", "--history", hist,
                     "--from-json", str(src)]) == 0
        series = load_history(hist).series()
        assert set(series) == {
            ("telemetry_overhead", "off_s"),
            ("telemetry_overhead", "memory_overhead_pct"),
            ("telemetry_overhead", "events_per_connection_second")}
        assert series[("telemetry_overhead", "off_s")][0].better == "lower"

    def test_record_missing_flags_exits_2(self, tmp_path, capsys):
        assert main(["record", "--history", str(tmp_path / "h"),
                     "--name", "x"]) == 2
        assert "--metric" in capsys.readouterr().err

    def test_usage_error_exits_2(self):
        assert main(["no-such-command"]) == 2
        assert main([]) == 2


class TestInferBetter:
    def test_directions(self):
        assert infer_better("wall_s") == "lower"
        assert infer_better("overhead_pct") == "lower"
        assert infer_better("events_per_s") == "higher"
        assert infer_better("goodput_bps") == "higher"
        assert infer_better("bytes_delivered") is None
