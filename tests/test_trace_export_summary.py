"""Tests for trace export and the connection summary API."""

import csv

import pytest

from repro.netsim.packet import PacketType, make_ack_packet, make_data_packet
from repro.netsim.trace import make_tap

from conftest import build_wired_connection


class TestTraceExport:
    def test_csv_roundtrip(self, sim, tmp_path):
        tap = make_tap(sim)
        tap(make_data_packet(0, 1))
        tap(make_ack_packet())
        path = tmp_path / "sub" / "trace.csv"
        rows = tap.to_csv(str(path))
        assert rows == 2
        with open(path) as f:
            parsed = list(csv.DictReader(f))
        assert parsed[0]["kind"] == "data"
        assert parsed[0]["seq"] == "0"
        assert parsed[1]["kind"] == "ack"
        assert parsed[1]["seq"] == ""

    def test_summary_by_kind(self, sim):
        tap = make_tap(sim)
        tap(make_data_packet(0, 1))
        tap(make_data_packet(1500, 2))
        tap(make_ack_packet(kind=PacketType.TACK))
        summary = tap.summary()
        assert summary["data"]["packets"] == 2
        assert summary["data"]["bytes"] == 2 * 1518
        assert summary["tack"]["packets"] == 1

    def test_live_connection_trace_export(self, sim, tmp_path):
        conn, path = build_wired_connection(sim, "tcp-tack", rate_bps=10e6,
                                            rtt_s=0.02)
        original = conn.receiver.on_packet
        tap = make_tap(sim, sink=original)
        path.wan.forward.connect(tap)
        conn.start_transfer(30 * 1500)
        sim.run(until=3.0)
        assert conn.completed
        n = tap.to_csv(str(tmp_path / "fwd.csv"))
        assert n == tap.count()
        assert tap.summary()["data"]["packets"] >= 30


class TestConnectionSummary:
    def test_summary_fields(self, sim):
        conn, _ = build_wired_connection(sim, "tcp-tack", rate_bps=10e6,
                                         rtt_s=0.02)
        conn.start_transfer(50 * 1500)
        sim.run(until=3.0)
        s = conn.summary()
        assert s["completed"] is True
        assert s["bytes_delivered"] == 50 * 1500
        assert s["acks_by_kind"]["tack"] > 0
        assert s["acks_by_kind"]["ack"] == 0
        assert 0 < s["ack_per_data"] < 1
        assert s["rtt_min_s"] == pytest.approx(0.02, rel=0.5)

    def test_summary_before_start(self, sim):
        conn, _ = build_wired_connection(sim, "tcp-bbr")
        s = conn.summary()
        assert s["bytes_delivered"] == 0
        assert s["completed"] is False
        assert s["ack_per_data"] == 0.0
