"""Unit tests for the video playback model's statistics."""

import pytest

from repro.app.video import VideoStats


class TestVideoStats:
    def test_rebuffering_ratio(self):
        s = VideoStats()
        s.stall_time_s = 3.0
        s.wall_time_s = 30.0
        assert s.rebuffering_ratio() == pytest.approx(0.1)

    def test_rebuffering_zero_wall_time(self):
        assert VideoStats().rebuffering_ratio() == 0.0

    def test_macroblocking_scaled_to_30min(self):
        s = VideoStats()
        s.frames_macroblocked = 2
        s.wall_time_s = 60.0
        assert s.macroblocking_per_30min() == pytest.approx(60.0)

    def test_macroblocking_zero_wall_time(self):
        assert VideoStats().macroblocking_per_30min() == 0.0


class TestPlaybackDynamics:
    def test_startup_delay_equals_prebuffer_fill(self, sim):
        """With an ideal link the player starts once prebuffer_frames
        are delivered — about prebuffer/fps after the handshake."""
        from repro.app.video import VideoSession
        from repro.netsim.paths import wired_path

        path = wired_path(sim, 1e9, 0.002)
        session = VideoSession(sim, path, "tcp-tack", bitrate_bps=8e6,
                               fps=30.0, prebuffer_frames=6,
                               initial_rtt_s=0.002)
        session.start()
        sim.run(until=3.0)
        stats = session.finish()
        # 6 frames at 30 fps ~ 0.2 s (plus handshake and transmission).
        assert stats.startup_delay_s == pytest.approx(6 / 30.0, abs=0.08)

    def test_stall_accounts_wall_time(self, sim):
        """A link slower than the bitrate stalls the player; stall time
        approaches the delivery deficit."""
        from repro.app.video import VideoSession
        from repro.netsim.paths import wired_path

        path = wired_path(sim, 4e6, 0.002)  # half the bitrate
        session = VideoSession(sim, path, "tcp-tack", bitrate_bps=8e6,
                               initial_rtt_s=0.002)
        session.start()
        sim.run(until=10.0)
        stats = session.finish()
        assert stats.rebuffering_ratio() > 0.3
        # Frames played tracks what the link could deliver.
        assert stats.frames_played < 0.7 * stats.frames_generated
