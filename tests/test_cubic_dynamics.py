"""CUBIC dynamics over real paths: convergence, deep-buffer behavior,
and the window-growth shape after a loss."""



from conftest import build_wired_connection


class TestCubicOverPaths:
    def test_recovers_to_wmax_after_isolated_loss(self, sim):
        from repro.netsim.loss import PatternLoss

        conn, _ = build_wired_connection(
            sim, "tcp-cubic", rate_bps=20e6, rtt_s=0.03,
            queue_bytes=300_000,
            forward_loss=PatternLoss([400]),
        )
        conn.start_bulk()
        sim.run(until=2.0)
        w_before = conn.sender.cc.cwnd_bytes()
        sim.run(until=12.0)
        # Long after the single loss, CUBIC is back at/above its old
        # operating point.
        assert conn.sender.cc.cwnd_bytes() > 0.8 * w_before

    def test_sawtooth_under_droptail(self, sim):
        """With a droptail bottleneck, CUBIC cycles: multiple loss
        events, each followed by regrowth (the classic sawtooth)."""
        conn, path = build_wired_connection(
            sim, "tcp-cubic", rate_bps=10e6, rtt_s=0.04,
            queue_bytes=50_000,
        )
        conn.start_bulk()
        sim.run(until=20.0)
        # Several queue-overflow loss episodes happened...
        assert path.wan.forward.queue.drops > 3
        # ...yet goodput stays high (fast regrowth between cuts).
        goodput = conn.receiver.stats.bytes_delivered * 8 / 20.0
        assert goodput > 0.8 * 10e6

    def test_utilizes_long_fat_pipe(self, sim):
        conn, _ = build_wired_connection(
            sim, "tcp-cubic", rate_bps=100e6, rtt_s=0.1,
            queue_bytes=2 * 1_250_000,
        )
        conn.start_bulk()
        sim.run(until=30.0)
        goodput = conn.receiver.stats.bytes_delivered * 8 / 30.0
        # CUBIC's raison d'etre: fill high-bdp pipes within the run.
        assert goodput > 0.7 * 100e6


class TestTackCubicParity:
    def test_tack_cubic_matches_legacy_cubic_goodput(self):
        """The TACK mechanism must not hobble a window-based
        controller (paper S5.3: CUBIC works with minor changes)."""
        from repro.netsim.engine import Simulator

        results = {}
        for scheme in ("tcp-cubic", "tcp-tack-cubic"):
            sim = Simulator(seed=21)
            conn, _ = build_wired_connection(
                sim, scheme, rate_bps=20e6, rtt_s=0.04,
                queue_bytes=200_000,
            )
            conn.start_bulk()
            sim.run(until=15.0)
            results[scheme] = conn.receiver.stats.bytes_delivered
        assert results["tcp-tack-cubic"] > 0.85 * results["tcp-cubic"]

    def test_tack_cubic_far_fewer_acks(self):
        from repro.netsim.engine import Simulator

        acks = {}
        for scheme in ("tcp-cubic", "tcp-tack-cubic"):
            sim = Simulator(seed=21)
            conn, _ = build_wired_connection(sim, scheme, rate_bps=20e6,
                                             rtt_s=0.08)
            conn.start_bulk()
            sim.run(until=10.0)
            acks[scheme] = conn.ack_count()
        assert acks["tcp-tack-cubic"] < 0.15 * acks["tcp-cubic"]
