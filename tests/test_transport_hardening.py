"""Transport failure handling: structured aborts, capped backoff,
zero-window probes, and TACK's graceful degradation under ACK-path
loss."""

import pytest

from repro.ack import TackPolicy
from repro.cc import BBR
from repro.core.params import TackParams
from repro.netsim.loss import BernoulliLoss
from repro.netsim.paths import wired_path
from repro.transport.connection import Connection, ConnectionConfig
from repro.transport.errors import ConnectionAborted, abort_result

from conftest import build_wired_connection


def build_custom_connection(sim, rate_bps=20e6, rtt_s=0.04, **cfg_kwargs):
    """Connection with direct access to ConnectionConfig knobs that
    ``make_connection`` does not expose (buffer drain, retry caps)."""
    path = wired_path(sim, rate_bps, rtt_s)
    cc = BBR()
    cc._initial_rtt_s = rtt_s
    config = ConnectionConfig(receiver_driven=True, use_receiver_rate=True,
                              timing_mode="advanced", **cfg_kwargs)
    conn = Connection(sim, cc, TackPolicy(TackParams()), config)
    conn.wire(path.forward, path.reverse)
    return conn, path


class TestHandshakeAbort:
    def test_total_loss_ends_in_structured_abort(self, sim):
        conn, _ = build_wired_connection(sim, "tcp-bbr", data_loss=1.0)
        conn.start_transfer(15_000)
        sim.run(until=1200.0)
        assert not conn.completed
        info = conn.aborted
        assert info is not None
        assert info.reason == "handshake_timeout"
        assert info.attempts == conn.sender.max_syn_retries + 1
        assert conn.sender.stats.handshake_retries == conn.sender.max_syn_retries
        # Abort tears everything down: the event loop must go quiet.
        sim.run(until=info.at_s + 120.0)
        assert sim.pending() == 0

    def test_retry_backoff_is_exponential(self, sim):
        conn, _ = build_wired_connection(sim, "tcp-bbr", data_loss=1.0)
        conn.start_transfer(15_000)
        sim.run(until=1200.0)
        # Seven attempts at a *fixed* initial RTO would give up after
        # ~7s; the doubling schedule pushes the abort far beyond that.
        linear = (conn.sender.max_syn_retries + 1) * conn.config.initial_rto_s
        assert conn.aborted.at_s > 2 * linear

    def test_raise_if_aborted_and_summary(self, sim):
        conn, _ = build_wired_connection(sim, "tcp-bbr", data_loss=1.0)
        conn.start_transfer(15_000)
        sim.run(until=1200.0)
        with pytest.raises(ConnectionAborted) as exc_info:
            conn.raise_if_aborted()
        assert exc_info.value.reason == "handshake_timeout"
        assert exc_info.value.info is conn.aborted
        s = conn.summary()
        assert s["aborted"]["reason"] == "handshake_timeout"
        assert s["completed"] is False

    def test_clean_connection_never_aborts(self, sim):
        conn, _ = build_wired_connection(sim, "tcp-tack")
        conn.start_transfer(50 * 1500)
        sim.run(until=5.0)
        assert conn.completed
        assert conn.aborted is None
        conn.raise_if_aborted()  # no-op
        assert conn.summary()["aborted"] is None
        assert abort_result(None) is None


class TestRtoExhaustion:
    def test_mid_transfer_blackout_aborts(self, sim):
        conn, path = build_wired_connection(sim, "tcp-bbr", rate_bps=20e6,
                                            rtt_s=0.04)
        conn.start_transfer(4_000_000)
        # Kill the data path for good once the transfer is in flight.
        sim.call_in(0.5, lambda: path.forward_link.set_loss(
            BernoulliLoss(1.0, 7)))
        sim.run(until=2400.0)
        info = conn.aborted
        assert info is not None
        assert info.reason == "rto_exhausted"
        assert info.attempts == conn.sender.max_rto_retries + 1
        # Degraded, not crashed: partial delivery happened before the
        # blackout and the abort records where the stall began.
        assert 0 < conn.receiver.stats.bytes_delivered < 4_000_000
        sim.run(until=info.at_s + 120.0)
        assert sim.pending() == 0

    def test_rto_recovers_from_transient_blackout(self, sim):
        conn, path = build_wired_connection(sim, "tcp-bbr", rate_bps=20e6,
                                            rtt_s=0.04)
        conn.start_transfer(1_500_000)

        def blackout():
            prev = path.forward_link.set_loss(BernoulliLoss(1.0, 7))
            sim.call_in(3.0, lambda: path.forward_link.set_loss(prev))

        sim.call_in(0.5, blackout)
        sim.run(until=120.0)
        assert conn.completed
        assert conn.aborted is None
        assert conn.sender.stats.rtos > 0


class TestPersistProbes:
    def test_zero_window_exhaustion_aborts(self, sim):
        conn, _ = build_custom_connection(
            sim, rcv_buffer_bytes=30 * 1500, auto_drain=False,
            max_persist_retries=4)
        conn.start_transfer(1_000_000)
        sim.run(until=600.0)
        info = conn.aborted
        assert info is not None
        assert info.reason == "persist_exhausted"
        assert conn.sender.stats.persist_probes > 0
        sim.run(until=info.at_s + 120.0)
        assert sim.pending() == 0

    def test_window_reopen_resumes_transfer(self, sim):
        conn, _ = build_custom_connection(
            sim, rcv_buffer_bytes=30 * 1500, auto_drain=False)
        conn.start_transfer(200 * 1500)
        # An application that reads slowly but steadily: the window
        # keeps reopening, so persist probes bridge stalls instead of
        # aborting.
        def drain():
            conn.receiver.read(15 * 1500)
            if not conn.completed:
                sim.call_in(0.5, drain)
        sim.call_in(1.0, drain)
        sim.run(until=120.0)
        assert conn.aborted is None
        assert conn.completed


class TestTackDegradation:
    def test_clock_densifies_under_ack_path_loss(self, sim):
        conn, _ = build_wired_connection(sim, "tcp-tack")
        policy = conn.receiver.policy
        base = policy.periodic_interval()
        conn.receiver.peer_ack_loss_rate = 0.5
        degraded = policy.periodic_interval()
        assert degraded == pytest.approx(base / 2.0)
        assert policy._degraded

    def test_densification_is_capped(self, sim):
        conn, _ = build_wired_connection(sim, "tcp-tack")
        policy = conn.receiver.policy
        base = policy.periodic_interval()
        conn.receiver.peer_ack_loss_rate = 0.99
        assert policy.periodic_interval() == pytest.approx(
            base / policy.params.max_degrade_factor)

    def test_below_threshold_keeps_eq3_clock(self, sim):
        conn, _ = build_wired_connection(sim, "tcp-tack")
        policy = conn.receiver.policy
        base = policy.periodic_interval()
        conn.receiver.peer_ack_loss_rate = policy.params.degrade_ack_loss
        assert policy.periodic_interval() == pytest.approx(base)
        assert not policy._degraded

    def test_poor_mode_never_degrades(self, sim):
        conn, _ = build_wired_connection(sim, "tcp-tack-poor")
        policy = conn.receiver.policy
        base = policy.periodic_interval()
        conn.receiver.peer_ack_loss_rate = 0.6
        # Fig. 5(b) baseline: the literal Eq. (3) clock, regardless of
        # ACK-path conditions.
        assert policy.periodic_interval() == pytest.approx(base)
        assert not policy._degraded

    def test_degrade_transition_emits_telemetry(self):
        from repro.netsim.engine import Simulator
        from repro.telemetry import TraceCollector
        sim = Simulator(seed=3, telemetry=TraceCollector())
        conn, _ = build_wired_connection(sim, "tcp-tack")
        policy = conn.receiver.policy
        conn.receiver.peer_ack_loss_rate = 0.5
        policy.periodic_interval()
        conn.receiver.peer_ack_loss_rate = 0.0
        policy.periodic_interval()
        names = [(e.name, e.fields.get("on")) for e in
                 sim.telemetry.events() if e.category == "ack"
                 and e.name == "degrade"]
        assert names == [("degrade", True), ("degrade", False)]

    def test_degrade_params_validated(self):
        with pytest.raises(ValueError):
            TackParams(degrade_ack_loss=0.0)
        with pytest.raises(ValueError):
            TackParams(degrade_ack_loss=1.5)
        with pytest.raises(ValueError):
            TackParams(max_degrade_factor=0.5)

    def test_degrade_params_survive_copy(self):
        p = TackParams(degrade_ack_loss=0.2, max_degrade_factor=3.0)
        q = p.copy(beta=4.0)
        assert q.degrade_ack_loss == 0.2
        assert q.max_degrade_factor == 3.0


class TestAckPathLossEndToEnd:
    """rho' comes from feedback-sequence gaps, so it must be exactly
    zero on a clean path (including app-limited flows, where the old
    expected-count estimator hallucinated ~50% loss) and track real
    reverse-path drops."""

    def _run(self, reverse_loss=None):
        from repro.netsim.engine import Simulator
        sim = Simulator(seed=1)
        conn, path = build_wired_connection(sim, "tcp-tack")
        if reverse_loss is not None:
            path.reverse_link.set_loss(
                BernoulliLoss(reverse_loss, sim.fork_rng("revloss")))
        conn.start_transfer(2_000_000)
        sim.run(until=30.0)
        return conn

    def test_clean_path_reports_zero_ack_loss(self):
        conn = self._run()
        assert conn.completed
        assert conn.sender.ack_loss.loss_rate == 0.0
        assert not conn.receiver.policy._degraded

    def test_reverse_path_loss_drives_degradation(self):
        conn = self._run(reverse_loss=0.5)
        assert conn.completed
        assert conn.sender.ack_loss.loss_rate == pytest.approx(0.5, abs=0.15)
        assert conn.receiver.policy._degraded
