"""Tests for asymmetric-path support and the ACK-congestion behavior."""

import pytest

from repro.netsim.emulator import EmulatedPath, PathConfig
from repro.netsim.packet import MSS, make_ack_packet

from conftest import run_bulk


class TestAsymmetricConfig:
    def test_reverse_rate_applies(self, sim):
        path = EmulatedPath(
            sim, PathConfig(100e6, 0.0, reverse_rate_bps=1e6)
        )
        times = []
        path.connect(lambda p: None, lambda p: times.append(sim.now()))
        for _ in range(10):
            path.send_reverse(make_ack_packet())
        sim.run()
        # 64 B at 1 Mbps = 0.512 ms apart.
        spacing = times[1] - times[0]
        assert spacing == pytest.approx(64 * 8 / 1e6)

    def test_defaults_stay_symmetric(self, sim):
        path = EmulatedPath(sim, PathConfig(100e6, 0.0))
        assert path.reverse.config.rate_bps == 100e6

    def test_reverse_queue_override(self, sim):
        path = EmulatedPath(
            sim,
            PathConfig(100e6, 0.0, queue_bytes=1_000_000,
                       reverse_rate_bps=1e6, reverse_queue_bytes=5_000),
        )
        assert path.reverse.queue.capacity_bytes == 5_000
        assert path.forward.queue.capacity_bytes == 1_000_000


class TestAckCongestion:
    def _goodput(self, scheme, up_bps):
        from repro.core.flavors import make_connection
        from repro.netsim.engine import Simulator

        sim = Simulator(seed=13)
        wan = EmulatedPath(
            sim,
            PathConfig(50e6, 0.04, queue_bytes=int(50e6 * 0.04 / 8),
                       reverse_rate_bps=up_bps, reverse_queue_bytes=16_000),
        )
        conn = make_connection(sim, scheme, initial_rtt_s=0.04)
        conn.wire(wan.forward, wan.reverse)
        run_bulk(sim, conn, 8.0)
        return conn.receiver.stats.bytes_delivered * 8 / 8.0

    def test_legacy_throttled_by_thin_uplink(self):
        fat = self._goodput("tcp-bbr", 10e6)
        thin = self._goodput("tcp-bbr", 0.1e6)
        assert thin < 0.3 * fat

    def test_tack_insensitive_to_thin_uplink(self):
        fat = self._goodput("tcp-tack", 10e6)
        thin = self._goodput("tcp-tack", 0.25e6)
        assert thin > 0.75 * fat

    def test_tack_degrades_gracefully_at_extreme_asymmetry(self):
        """Even at 500:1 down/up, TACK retains most of its goodput
        (legacy TCP collapses, see test above)."""
        fat = self._goodput("tcp-tack", 10e6)
        extreme = self._goodput("tcp-tack", 0.1e6)
        assert extreme > 0.5 * fat

    def test_completion_on_asymmetric_path(self, sim):
        from repro.core.flavors import make_connection

        wan = EmulatedPath(
            sim,
            PathConfig(50e6, 0.04, queue_bytes=250_000,
                       reverse_rate_bps=0.2e6, reverse_queue_bytes=16_000),
        )
        conn = make_connection(sim, "tcp-tack", initial_rtt_s=0.04)
        conn.wire(wan.forward, wan.reverse)
        conn.start_transfer(500 * MSS)
        sim.run(until=20.0)
        assert conn.completed
