"""Unit tests for queues, links, pipes, and the WAN emulator."""

import pytest

from repro.netsim.emulator import EmulatedPath, PathConfig
from repro.netsim.link import Link, LinkConfig
from repro.netsim.loss import BernoulliLoss, PatternLoss
from repro.netsim.packet import make_ack_packet, make_data_packet
from repro.netsim.pipe import Pipe
from repro.netsim.queue import DropTailQueue, REDQueue


class TestDropTail:
    def test_fifo_order(self):
        q = DropTailQueue()
        a, b = make_data_packet(0, 1), make_data_packet(1500, 2)
        q.try_enqueue(a)
        q.try_enqueue(b)
        assert q.dequeue() is a
        assert q.dequeue() is b
        assert q.dequeue() is None

    def test_byte_capacity_enforced(self):
        q = DropTailQueue(capacity_bytes=3000)
        assert q.try_enqueue(make_data_packet(0, 1))
        assert not q.try_enqueue(make_data_packet(1500, 2))
        assert q.drops == 1

    def test_bytes_tracked(self):
        q = DropTailQueue()
        q.try_enqueue(make_data_packet(0, 1))
        assert q.bytes_queued == 1518
        q.dequeue()
        assert q.bytes_queued == 0

    def test_peak_tracked(self):
        q = DropTailQueue()
        for i in range(3):
            q.try_enqueue(make_data_packet(i * 1500, i + 1))
        q.dequeue()
        assert q.peak_bytes == 3 * 1518

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DropTailQueue(capacity_bytes=0)

    def test_overflow_accounting(self):
        # A rejected packet must not perturb any occupancy accounting:
        # not enqueued, not counted in bytes/peak, and the queue still
        # accepts a later packet that fits.
        q = DropTailQueue(capacity_bytes=3200)
        assert q.try_enqueue(make_data_packet(0, 1))        # 1518B
        assert q.try_enqueue(make_data_packet(1500, 2))     # 3036B
        assert not q.try_enqueue(make_data_packet(3000, 3))  # would be 4554B
        assert q.drops == 1
        assert q.enqueued == 2
        assert q.bytes_queued == 2 * 1518
        assert q.peak_bytes == 2 * 1518
        assert len(q) == 2
        q.dequeue()
        ack = make_ack_packet()  # small enough to fit now
        assert q.try_enqueue(ack)
        assert q.enqueued == 3
        assert q.drops == 1


class TestRed:
    def test_no_drops_below_min_thresh(self):
        import random
        q = REDQueue(capacity_bytes=100_000, min_thresh=50_000,
                     max_thresh=80_000, rng=random.Random(1))
        for i in range(30):
            assert q.try_enqueue(make_data_packet(i * 1500, i + 1))
        assert q.drops == 0

    def test_probabilistic_drops_between_thresholds(self):
        import random
        q = REDQueue(capacity_bytes=10_000_000, min_thresh=10_000,
                     max_thresh=20_000, max_p=1.0, rng=random.Random(1))
        dropped = 0
        for i in range(100):
            if not q.try_enqueue(make_data_packet(i * 1500, i + 1)):
                dropped += 1
        assert dropped > 0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            REDQueue(capacity_bytes=1000, min_thresh=500, max_thresh=400)


class TestLink:
    def test_serialization_plus_propagation(self, sim):
        got = []
        link = Link(sim, LinkConfig(rate_bps=12e6, delay_s=0.01),
                    sink=lambda p: got.append(sim.now()))
        link.send(make_data_packet(0, 1))  # 1518B at 12Mbps = 1.012ms
        sim.run()
        assert got[0] == pytest.approx(0.001012 + 0.01)

    def test_back_to_back_serialization(self, sim):
        got = []
        link = Link(sim, LinkConfig(rate_bps=12e6, delay_s=0.0),
                    sink=lambda p: got.append(sim.now()))
        for i in range(3):
            link.send(make_data_packet(i * 1500, i + 1))
        sim.run()
        spacing = got[1] - got[0]
        assert spacing == pytest.approx(1518 * 8 / 12e6)

    def test_rate_enforced(self, sim):
        got_bytes = [0]
        link = Link(sim, LinkConfig(rate_bps=10e6, delay_s=0.0),
                    sink=lambda p: got_bytes.__setitem__(0, got_bytes[0] + p.size))
        for i in range(1000):
            link.send(make_data_packet(i * 1500, i + 1))
        sim.run(until=0.5)
        assert got_bytes[0] * 8 <= 10e6 * 0.5 * 1.01

    def test_queue_overflow_drops(self, sim):
        link = Link(sim, LinkConfig(rate_bps=1e6, delay_s=0.0, queue_bytes=5000))
        link.connect(lambda p: None)
        for i in range(10):
            link.send(make_data_packet(i * 1500, i + 1))
        assert link.packets_lost > 0

    def test_ingress_loss_model(self, sim):
        link = Link(
            sim,
            LinkConfig(rate_bps=1e9, delay_s=0.0, loss=PatternLoss([1])),
        )
        got = []
        link.connect(got.append)
        for i in range(3):
            link.send(make_data_packet(i * 1500, i + 1))
        sim.run()
        assert len(got) == 2
        assert link.loss_rate_observed == pytest.approx(1 / 3)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            LinkConfig(rate_bps=0)
        with pytest.raises(ValueError):
            LinkConfig(rate_bps=1e6, delay_s=-1)


class TestPipe:
    def test_fixed_delay(self, sim):
        got = []
        pipe = Pipe(sim, delay_s=0.123, sink=lambda p: got.append(sim.now()))
        pipe.send(make_ack_packet())
        sim.run()
        assert got == [pytest.approx(0.123)]

    def test_loss_model_applies(self, sim):
        pipe = Pipe(sim, delay_s=0.0, loss=PatternLoss([0]))
        got = []
        pipe.connect(got.append)
        pipe.send(make_ack_packet())
        pipe.send(make_ack_packet())
        sim.run()
        assert len(got) == 1
        assert pipe.packets_lost == 1


class TestEmulatedPath:
    def test_rtt_split_between_directions(self, sim):
        path = EmulatedPath(sim, PathConfig(rate_bps=1e9, rtt_s=0.2))
        fwd_t, rev_t = [], []
        path.connect(lambda p: fwd_t.append(sim.now()),
                     lambda p: rev_t.append(sim.now()))
        path.send_forward(make_data_packet(0, 1))
        path.send_reverse(make_ack_packet())
        sim.run()
        assert fwd_t[0] == pytest.approx(0.1, abs=1e-3)
        assert rev_t[0] == pytest.approx(0.1, abs=1e-3)

    def test_asymmetric_loss(self, sim):
        path = EmulatedPath(
            sim, PathConfig(rate_bps=1e9, rtt_s=0.01, data_loss=1.0, ack_loss=0.0)
        )
        fwd, rev = [], []
        path.connect(fwd.append, rev.append)
        path.send_forward(make_data_packet(0, 1))
        path.send_reverse(make_ack_packet())
        sim.run()
        assert fwd == []
        assert len(rev) == 1

    def test_bdp_helper(self):
        cfg = PathConfig(rate_bps=100e6, rtt_s=0.2)
        assert cfg.bdp_bytes() == int(100e6 * 0.2 / 8)

    def test_loss_model_override(self, sim):
        path = EmulatedPath(
            sim,
            PathConfig(rate_bps=1e9, rtt_s=0.01),
            forward_loss=BernoulliLoss(1.0, 1),
        )
        fwd = []
        path.connect(fwd.append, lambda p: None)
        path.send_forward(make_data_packet(0, 1))
        sim.run()
        assert fwd == []
