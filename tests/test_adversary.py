"""Adversary suite: misbehaving-peer models, the deterministic
feedback fuzzer, and the guard's false-positive property.

Three contracts live here:

1. **Declared verdicts** — every ``adv-*`` scenario ends exactly the
   way it declares: the abort reason (``misbehaving_peer``, never an
   incidental ``rto_exhausted``) and the flow-doctor diagnosis
   (``misbehaving-peer`` anomaly) both match.
2. **Full-delivery-or-clean-abort** — a fuzzed feedback stream can
   slow a transfer or kill it with a documented abort, but can never
   corrupt it (sender completes, receiver missing bytes), hang it, or
   crash it.  The slow corpus drives >= 10k mutated frames across all
   four schemes (the acceptance floor).
3. **No false positives** — the guard never fires on legitimate
   feedback: the entire legit chaos matrix and the fig08/fig09
   experiment paths run clean in strict mode (first violation would
   abort).

The full matrices are marked ``slow``; tier-1 runs smoke subsets.
"""

import pytest

from repro.adversary import (
    ADVERSARIES,
    CLEAN_ABORT_REASONS,
    FUZZ_SCHEMES,
    fuzz_corpus,
    fuzz_run,
)
from repro.chaos import (
    ADVERSARY_SCENARIOS,
    DEFAULT_SCHEMES,
    SCENARIOS,
    adversary_scenario,
    get_scenario,
    run_scenario,
)

SMOKE_LEGIT = ("blackout", "ack-path-loss", "burst-loss")


def assert_declared_ending(result):
    """Chaos contract plus the adversary pin: when the scenario
    declares an abort vocabulary, the *reason* must match too."""
    assert result.outcome in ("delivered", "aborted"), result.to_dict()
    assert result.ok, result.to_dict()
    if result.expect_abort:
        assert result.abort is not None
        assert result.abort["reason"] in result.expect_abort
    assert result.diagnosis_ok(), {
        "expected": result.expect_diagnosis,
        "dominant": result.dominant_diagnosis(),
        "anomalies": result.anomaly_kinds(),
    }


class TestRegistry:
    def test_every_model_has_a_scenario(self):
        assert set(ADVERSARIES) == {
            s.adversary for s in ADVERSARY_SCENARIOS.values()}

    def test_adversary_scenarios_stay_out_of_legit_matrix(self):
        # The legit matrix doubles as the strict-mode false-positive
        # suite; an adversary scenario leaking in would break it.
        assert not set(ADVERSARY_SCENARIOS) & set(SCENARIOS)

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError, match="optimistic-acker"):
            adversary_scenario("no-such-model")

    def test_get_scenario_resolves_adv_names(self):
        assert get_scenario("adv-field-mangler").adversary == "field-mangler"

    def test_fuzz_schemes_match_chaos_matrix(self):
        # FUZZ_SCHEMES is a cycle-breaking copy; it must not drift.
        assert set(FUZZ_SCHEMES) == set(DEFAULT_SCHEMES)


class TestDeclaredVerdicts:
    """Tier-1 smoke: every model under the TACK scheme it targets."""

    @pytest.mark.parametrize("name", sorted(ADVERSARY_SCENARIOS))
    def test_model_yields_declared_verdict(self, name):
        result = run_scenario(get_scenario(name), scheme="tcp-tack",
                              simsan=True)
        assert_declared_ending(result)

    def test_withholder_aborts_via_watchdog(self):
        result = run_scenario(adversary_scenario("ack-withholder"),
                              scheme="tcp-tack", simsan=True)
        assert result.abort["reason"] == "misbehaving_peer"
        guard = result.summary["guard"]
        assert guard["watchdog_probes"] >= 1
        assert guard["violations"].get("withheld", 0) >= 1

    def test_rtt_poisoner_is_tolerated_not_escalated(self):
        result = run_scenario(adversary_scenario("rtt-poisoner"),
                              scheme="tcp-tack", simsan=True)
        assert result.outcome == "delivered"
        assert result.bytes_delivered == result.transfer_bytes
        guard = result.summary["guard"]
        assert guard["total"] >= 1           # the lies were seen...
        assert result.abort is None          # ...and clamped through

    def test_misbehaving_peer_anomaly_carries_evidence(self):
        result = run_scenario(adversary_scenario("field-mangler"),
                              scheme="tcp-tack", simsan=True)
        flow = next(iter(result.diagnosis["flows"].values()))
        anomaly = next(a for a in flow["anomalies"]
                       if a["kind"] == "misbehaving-peer")
        assert anomaly["count"] >= 1
        assert anomaly["rules"]
        assert flow["guard"]["total"] >= 1

    def test_same_seed_is_deterministic(self):
        a = run_scenario(adversary_scenario("field-mangler"),
                         scheme="tcp-tack", seed=5)
        b = run_scenario(adversary_scenario("field-mangler"),
                         scheme="tcp-tack", seed=5)
        assert a.to_dict() == b.to_dict()


@pytest.mark.slow
class TestFullMatrix:
    """Every adversary model x every scheme ends as declared."""

    @pytest.mark.parametrize("name", sorted(ADVERSARY_SCENARIOS))
    @pytest.mark.parametrize("scheme", DEFAULT_SCHEMES)
    def test_declared_verdict(self, name, scheme):
        result = run_scenario(get_scenario(name), scheme=scheme, simsan=True)
        assert_declared_ending(result)


class TestFuzzer:
    def test_smoke_corpus(self):
        report = fuzz_corpus(seeds=range(1, 4), schemes=("tcp-tack",),
                             simsan=True)
        assert report.ok, report.to_dict()
        assert report.frames_mutated > 0

    def test_clean_abort_vocabulary_is_documented(self):
        # The stable reason strings from repro.transport.errors — a new
        # abort reason must be added to both vocabularies deliberately.
        assert CLEAN_ABORT_REASONS == {
            "handshake_timeout", "rto_exhausted", "persist_exhausted",
            "misbehaving_peer"}

    def test_same_seed_is_deterministic(self):
        a = fuzz_run(scheme="tcp-bbr", seed=9, simsan=True)
        b = fuzz_run(scheme="tcp-bbr", seed=9, simsan=True)
        assert a.to_dict() == b.to_dict()

    def test_different_seeds_differ(self):
        a = fuzz_run(scheme="tcp-tack", seed=1, simsan=True)
        b = fuzz_run(scheme="tcp-tack", seed=2, simsan=True)
        assert a.ops != b.ops or a.frames_mutated != b.frames_mutated

    def test_zero_rate_is_a_clean_run(self):
        result = fuzz_run(scheme="tcp-tack", seed=3, mutation_rate=0.0,
                          simsan=True)
        assert result.outcome == "delivered"
        assert result.frames_mutated == 0
        assert result.guard["total"] == 0

    @pytest.mark.slow
    def test_property_holds_for_10k_mutated_frames(self):
        # The acceptance floor: >= 10k mutated frames across all four
        # schemes, every run delivered or cleanly aborted under simsan.
        report = fuzz_corpus(seeds=range(1, 200), schemes=FUZZ_SCHEMES,
                             frames_target=10_000, simsan=True)
        assert report.frames_mutated >= 10_000
        assert report.ok, report.to_dict()


class TestLiveOfflineParity:
    """Guard events round-trip through the telemetry trace: replaying
    an adversarial run's trace offline reproduces the live doctor's
    report digest (misbehaving-peer anomaly included)."""

    @pytest.mark.parametrize("model", ("field-mangler", "ack-withholder"))
    def test_jsonl_trace_replay_matches_live(self, tmp_path, model):
        from repro.diagnose.offline import diagnose_trace
        from repro.telemetry import JsonlSink, TraceCollector

        path = tmp_path / "adv.jsonl"
        collector = TraceCollector(sink=JsonlSink(str(path)))
        live = run_scenario(adversary_scenario(model), scheme="tcp-tack",
                            simsan=True, telemetry=collector)
        collector.close()
        offline = diagnose_trace(str(path))
        assert offline["digest"] == live.diagnosis["digest"]
        flow = next(iter(offline["flows"].values()))
        assert "misbehaving-peer" in {
            a["kind"] for a in flow["anomalies"]}


class TestFalsePositives:
    """Strict mode escalates on the *first* violation, so a clean
    strict run proves the guard saw zero violations."""

    @pytest.fixture(autouse=True)
    def strict(self, monkeypatch):
        monkeypatch.setenv("REPRO_GUARD_STRICT", "1")

    @pytest.mark.parametrize("name", SMOKE_LEGIT)
    @pytest.mark.parametrize("scheme", ("tcp-tack", "tcp-cubic"))
    def test_legit_chaos_smoke_clean_in_strict_mode(self, name, scheme):
        result = run_scenario(get_scenario(name), scheme=scheme, simsan=True)
        assert result.ok, result.to_dict()
        guard = result.summary["guard"]
        assert guard["total"] == 0, guard
        if result.abort is not None:
            assert result.abort["reason"] != "misbehaving_peer"

    def test_zero_window_persist_path_clean_in_strict_mode(self, sim):
        # A receiver legitimately closing its window to zero must not
        # look like an awnd lie (persist mode, not misbehaving_peer).
        from repro.netsim.packet import MSS

        from conftest import build_wired_connection

        conn, _ = build_wired_connection(sim, "tcp-tack", rate_bps=50e6,
                                         rtt_s=0.02)
        conn.receiver.auto_drain = False
        conn.receiver.rcv_buffer_bytes = 30 * MSS
        conn.start_transfer(200 * MSS)
        sim.run(until=1.0)
        assert conn.sender.cum_acked < 200 * MSS   # genuinely stalled

        def read_some():
            if conn.completed:
                return
            conn.receiver.read(10 * MSS)
            sim.call_in(0.05, read_some)

        read_some()
        sim.run(until=10.0)
        assert conn.completed
        guard = conn.summary()["guard"]
        assert guard["total"] == 0, guard
        assert conn.sender.aborted is None

    @pytest.mark.slow
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    @pytest.mark.parametrize("scheme", DEFAULT_SCHEMES)
    def test_full_legit_matrix_clean_in_strict_mode(self, name, scheme):
        result = run_scenario(get_scenario(name), scheme=scheme, simsan=True)
        assert result.ok, result.to_dict()
        guard = result.summary["guard"]
        assert guard["total"] == 0, guard
        if result.abort is not None:
            assert result.abort["reason"] != "misbehaving_peer"

    @pytest.mark.slow
    def test_fig08_measured_clean_in_strict_mode(self):
        from repro.experiments.fig08_ack_frequency import run_measured

        table = run_measured(duration_s=2.0)
        assert table.rows

    @pytest.mark.slow
    def test_fig09_improvement_clean_in_strict_mode(self):
        from repro.experiments.fig09_goodput_trend import run_improvement

        table = run_improvement(rtts=(0.04,), duration_s=2.0,
                                warmup_s=0.7)
        assert table.rows
