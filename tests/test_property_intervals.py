"""Property-based tests for the IntervalSet (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transport.intervals import IntervalSet

ranges_strategy = st.lists(
    st.tuples(st.integers(0, 200), st.integers(1, 30)).map(
        lambda t: (t[0], t[0] + t[1])
    ),
    min_size=0,
    max_size=30,
)


def brute_force_set(ranges):
    present = set()
    for start, end in ranges:
        present.update(range(start, end))
    return present


@given(ranges_strategy)
def test_membership_matches_brute_force(ranges):
    s = IntervalSet(ranges)
    expected = brute_force_set(ranges)
    for value in range(0, 240):
        assert (value in s) == (value in expected)


@given(ranges_strategy)
def test_covered_matches_brute_force(ranges):
    s = IntervalSet(ranges)
    assert s.covered() == len(brute_force_set(ranges))


@given(ranges_strategy)
def test_ranges_disjoint_and_sorted(ranges):
    s = IntervalSet(ranges)
    rs = s.ranges()
    for (s1, e1), (s2, e2) in zip(rs, rs[1:]):
        assert e1 < s2  # disjoint, not even touching
    for start, end in rs:
        assert start < end


@given(ranges_strategy)
def test_add_returns_new_count(ranges):
    s = IntervalSet()
    total = set()
    for start, end in ranges:
        before = len(total)
        total.update(range(start, end))
        assert s.add(start, end) == len(total) - before


@given(ranges_strategy, st.integers(0, 240))
def test_first_missing_matches_brute_force(ranges, probe):
    s = IntervalSet(ranges)
    expected = brute_force_set(ranges)
    value = probe
    while value in expected:
        value += 1
    assert s.first_missing(probe) == value


@given(ranges_strategy, st.integers(0, 240))
def test_gaps_complement_ranges(ranges, upto):
    s = IntervalSet(ranges)
    expected = brute_force_set(ranges)
    gap_values = set()
    for start, end in s.gaps(upto):
        gap_values.update(range(start, min(end, upto)))
    for value in range(upto):
        assert (value in gap_values) == (value not in expected)


@given(ranges_strategy, st.integers(0, 240))
def test_remove_below_drops_exactly(ranges, bound):
    s = IntervalSet(ranges)
    expected = {v for v in brute_force_set(ranges) if v >= bound}
    s.remove_below(bound)
    assert brute_force_set(s.ranges()) == expected


@given(ranges_strategy)
@settings(max_examples=50)
def test_idempotent_re_add(ranges):
    s = IntervalSet(ranges)
    snapshot = s.ranges()
    for start, end in ranges:
        assert s.add(start, end) == 0
    assert s.ranges() == snapshot
