"""Tests for the Eq. (6) adaptive TACK block budget ("carried on
demand", paper S4.4 / Appendix A)."""

import pytest

from repro.ack import TackPolicy
from repro.core.params import TackParams
from repro.netsim.packet import MSS, PacketType, make_data_packet
from repro.transport.receiver import TransportReceiver

from conftest import build_wired_connection


class StubPort:
    def __init__(self):
        self.sent = []

    def send(self, packet):
        self.sent.append(packet)
        return True

    def connect(self, sink):
        pass


def make_rx(sim, **kwargs):
    params = TackParams(rich="adaptive", **kwargs)
    rx = TransportReceiver(sim, TackPolicy(params))
    port = StubPort()
    rx.connect(port)
    return rx, port


def feed(sim, rx, indices, ack_loss=0.0, rtt_min=0.05):
    for idx in indices:
        pkt = make_data_packet(idx * MSS, idx + 1)
        pkt.sent_at = sim.now()
        pkt.meta["rtt_min"] = rtt_min
        pkt.meta["ack_loss_rate"] = ack_loss
        rx.on_packet(pkt)


class TestAdaptiveBudget:
    def _run(self, sim, ack_loss):
        """Return the richest TACK emitted while bandwidth samples are
        fresh (the budget intentionally shrinks once the flow idles and
        the bw filter drains — byte-counting regime, Eq. 8)."""
        rx, port = make_rx(sim)
        # every third packet missing -> many holes, rho ~ 0.3
        indices = [i for i in range(60) if i % 3 != 2]
        feed(sim, rx, indices, ack_loss=ack_loss, rtt_min=0.01)
        sim.run(until=sim.now() + 0.05)
        tacks = [p for p in port.sent if p.kind is PacketType.TACK]
        assert tacks
        return max(tacks, key=lambda p: len(p.meta["fb"].unacked_blocks)).meta["fb"]

    def test_low_ack_loss_carries_q_blocks(self, sim):
        fb = self._run(sim, ack_loss=0.0)
        assert len(fb.unacked_blocks) <= 1

    def test_high_ack_loss_carries_more_blocks(self, sim):
        fb = self._run(sim, ack_loss=0.5)
        assert len(fb.unacked_blocks) > 1

    def test_params_validation(self):
        with pytest.raises(ValueError):
            TackParams(rich="sometimes")

    def test_copy_preserves_adaptive(self):
        p = TackParams(rich="adaptive")
        assert p.copy().rich == "adaptive"


class TestAdaptiveEndToEnd:
    def test_completes_under_bidirectional_loss(self, sim):
        conn, _ = build_wired_connection(
            sim, "tcp-tack-adaptive", rate_bps=10e6, rtt_s=0.1,
            data_loss=0.02, ack_loss=0.05,
        )
        conn.start_transfer(300 * MSS)
        sim.run(until=40.0)
        assert conn.completed

    def test_cheaper_than_rich_when_lossless(self):
        """Without ACK loss the adaptive TACKs stay small."""
        from repro.netsim.engine import Simulator

        sizes = {}
        for scheme in ("tcp-tack", "tcp-tack-adaptive"):
            sim = Simulator(seed=11)
            conn, path = build_wired_connection(
                sim, scheme, rate_bps=10e6, rtt_s=0.05, data_loss=0.03,
            )
            conn.start_bulk()
            sim.run(until=8.0)
            # average feedback wire size
            rev = path.wan.reverse
            sizes[scheme] = rev.bytes_delivered / max(rev.packets_delivered, 1)
        assert sizes["tcp-tack-adaptive"] <= sizes["tcp-tack"]

    def test_utilization_close_to_rich_under_heavy_ack_loss(self):
        from repro.netsim.engine import Simulator

        util = {}
        for scheme in ("tcp-tack", "tcp-tack-adaptive"):
            sim = Simulator(seed=7)
            conn, _ = build_wired_connection(
                sim, scheme, rate_bps=10e6, rtt_s=0.2,
                queue_bytes=int(10e6 * 0.2 / 8),
                data_loss=0.01, ack_loss=0.10,
            )
            conn.start_bulk()
            sim.run(until=15.0)
            util[scheme] = conn.receiver.stats.bytes_delivered
        assert util["tcp-tack-adaptive"] > 0.7 * util["tcp-tack"]
