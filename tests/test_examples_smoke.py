"""Smoke tests: every example script imports and its core routine runs
on a reduced scale (full-scale runs live in the examples themselves)."""

import importlib.util
import pathlib


EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(name.removesuffix(".py"), path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamplesImportAndRun:
    def test_all_examples_present(self):
        names = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        assert {"quickstart.py", "wireless_projection.py",
                "wan_bulk_transfer.py", "ack_frequency_explorer.py",
                "hybrid_wlan_wan.py", "crowded_ap.py"} <= names

    def test_quickstart_runs_reduced(self):
        mod = load_example("quickstart.py")
        mod.DURATION_S = 1.0
        mod.WARMUP_S = 0.3
        result = mod.run_scheme("tcp-tack")
        assert result["goodput_mbps"] > 10

    def test_ack_frequency_explorer_is_pure(self, capsys):
        mod = load_example("ack_frequency_explorer.py")
        mod.fig8_table()
        mod.fig17_sweep()
        out = capsys.readouterr().out
        assert "pivot point" in out

    def test_wan_bulk_reduced(self):
        mod = load_example("wan_bulk_transfer.py")
        mod.DURATION_S = 3.0
        mod.WARMUP_S = 1.0
        util = mod.run("tcp-tack", ack_loss=0.01)
        assert util > 0.3

    def test_crowded_ap_reduced(self):
        mod = load_example("crowded_ap.py")
        mod.DURATION_S = 1.5
        mod.WARMUP_S = 0.5
        result = mod.run("tcp-tack", 2)
        assert result["total_mbps"] > 20

    def test_wireless_projection_reduced(self):
        mod = load_example("wireless_projection.py")
        mod.DURATION_S = 2.0
        result = mod.run("tcp-tack")
        assert result["frames"] > 30

    def test_hybrid_reduced(self):
        mod = load_example("hybrid_wlan_wan.py")
        mod.DURATION_S = 2.0
        mod.WARMUP_S = 0.5
        result = mod.run("tcp-tack", mod.CASES[0])
        assert result["goodput_mbps"] > 5
