"""Unit tests for windowed extrema filters (BBR/TACK estimators)."""

import pytest

from repro.cc.windowed_filter import WindowedMaxFilter, WindowedMinFilter


class TestMaxFilter:
    def test_empty_returns_none(self):
        assert WindowedMaxFilter(1.0).get() is None

    def test_tracks_running_max(self):
        f = WindowedMaxFilter(10.0)
        for t, v in enumerate([3.0, 7.0, 5.0]):
            f.update(v, float(t))
        assert f.get() == 7.0

    def test_expires_old_samples(self):
        f = WindowedMaxFilter(1.0)
        f.update(10.0, 0.0)
        f.update(5.0, 0.5)
        assert f.get(now=1.2) == 5.0  # the 10.0 at t=0 has aged out

    def test_all_expired(self):
        f = WindowedMaxFilter(1.0)
        f.update(10.0, 0.0)
        assert f.get(now=5.0) is None

    def test_reset(self):
        f = WindowedMaxFilter(1.0)
        f.update(10.0, 0.0)
        f.reset()
        assert f.get() is None

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            WindowedMaxFilter(0.0)

    def test_matches_brute_force(self):
        import random
        rng = random.Random(5)
        f = WindowedMaxFilter(2.0)
        samples = []
        for i in range(500):
            t = i * 0.01
            v = rng.random()
            samples.append((t, v))
            f.update(v, t)
            brute = max(val for ts, val in samples if ts >= t - 2.0)
            assert f.get() == pytest.approx(brute)


class TestMinFilter:
    def test_tracks_running_min(self):
        f = WindowedMinFilter(10.0)
        for t, v in enumerate([3.0, 7.0, 1.0, 5.0]):
            f.update(v, float(t))
        assert f.get() == 1.0

    def test_window_expiry_reveals_larger_value(self):
        f = WindowedMinFilter(1.0)
        f.update(1.0, 0.0)
        f.update(3.0, 0.9)
        assert f.get(now=1.5) == 3.0

    def test_matches_brute_force(self):
        import random
        rng = random.Random(9)
        f = WindowedMinFilter(0.5)
        samples = []
        for i in range(500):
            t = i * 0.01
            v = rng.random()
            samples.append((t, v))
            f.update(v, t)
            brute = min(val for ts, val in samples if ts >= t - 0.5)
            assert f.get() == pytest.approx(brute)
