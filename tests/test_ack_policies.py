"""Unit tests for the acknowledgment policies.

Policies run against a real TransportReceiver fed with hand-built data
packets; emitted feedback is captured through a stub port.
"""

import itertools

import pytest

from repro.ack import (
    ByteCountingAck,
    DelayedAck,
    PerPacketAck,
    PeriodicAck,
    TackPolicy,
)
from repro.core.params import TackParams
from repro.netsim.packet import MSS, PacketType, make_data_packet
from repro.transport.receiver import TransportReceiver


class StubPort:
    def __init__(self):
        self.sent = []

    def send(self, packet):
        self.sent.append(packet)
        return True

    def connect(self, sink):
        pass


def make_receiver(sim, policy, **kwargs):
    rx = TransportReceiver(sim, policy, **kwargs)
    port = StubPort()
    rx.connect(port)
    return rx, port


def feed(sim, rx, indices, rtt_min=0.05, at=None):
    """Deliver MSS-sized segments with the given stream indices."""
    for idx in indices:
        pkt = make_data_packet(idx * MSS, idx + 1)
        pkt.sent_at = sim.now()
        pkt.meta["rtt_min"] = rtt_min
        rx.on_packet(pkt)


class TestPerPacket:
    def test_one_ack_per_packet(self, sim):
        rx, port = make_receiver(sim, PerPacketAck())
        feed(sim, rx, range(5))
        assert len(port.sent) == 5
        assert all(p.kind is PacketType.ACK for p in port.sent)

    def test_cum_ack_advances(self, sim):
        rx, port = make_receiver(sim, PerPacketAck())
        feed(sim, rx, range(3))
        assert port.sent[-1].meta["fb"].cum_ack == 3 * MSS

    def test_sack_blocks_on_gap(self, sim):
        rx, port = make_receiver(sim, PerPacketAck())
        feed(sim, rx, [0, 2])
        fb = port.sent[-1].meta["fb"]
        assert fb.cum_ack == MSS
        assert fb.sack_blocks == [(2 * MSS, 3 * MSS)]


class TestDelayed:
    def test_every_second_packet(self, sim):
        rx, port = make_receiver(sim, DelayedAck(count_l=2, gamma_s=10.0))
        feed(sim, rx, range(6))
        assert len(port.sent) == 3

    def test_timer_flushes_odd_packet(self, sim):
        rx, port = make_receiver(sim, DelayedAck(count_l=2, gamma_s=0.05))
        feed(sim, rx, [0])
        assert len(port.sent) == 0
        sim.run(until=0.1)
        assert len(port.sent) == 1

    def test_out_of_order_acked_immediately(self, sim):
        rx, port = make_receiver(sim, DelayedAck(count_l=2, gamma_s=10.0))
        feed(sim, rx, [0, 1, 3])  # 3 is out of order
        # 2 for the pair + 1 immediate dupack for the hole
        assert len(port.sent) == 2
        assert port.sent[-1].meta["fb"].cum_ack == 2 * MSS

    def test_validation(self):
        with pytest.raises(ValueError):
            DelayedAck(count_l=0)
        with pytest.raises(ValueError):
            DelayedAck(gamma_s=0)


class TestByteCounting:
    @pytest.mark.parametrize("L", [4, 8, 16])
    def test_acks_every_l_packets(self, sim, L):
        rx, port = make_receiver(sim, ByteCountingAck(count_l=L, gamma_s=10.0))
        feed(sim, rx, range(L * 3))
        assert len(port.sent) == 3

    def test_name_includes_l(self):
        assert "L8" in ByteCountingAck(8).name


class TestPeriodic:
    def test_fixed_interval(self, sim):
        rx, port = make_receiver(sim, PeriodicAck(alpha_s=0.025))
        # Continuous arrivals for 0.25 s.
        seqs = itertools.count()
        def arrive():
            feed(sim, rx, [next(seqs)])
            sim.call_in(0.001, arrive)
        arrive()
        sim.run(until=0.25)
        assert len(port.sent) == pytest.approx(10, abs=2)

    def test_no_acks_when_idle(self, sim):
        rx, port = make_receiver(sim, PeriodicAck(alpha_s=0.025))
        feed(sim, rx, [0])
        sim.run(until=1.0)
        # One ACK for the lone packet, then silence.
        assert len(port.sent) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodicAck(alpha_s=0)


class TestTackFrequency:
    def test_periodic_regime_four_per_rtt(self, sim):
        """High bw, rtt 100 ms -> ~beta/RTT = 40 TACKs per second."""
        params = TackParams()
        rx, port = make_receiver(sim, TackPolicy(params))
        seqs = itertools.count()
        def arrive():
            feed(sim, rx, [next(seqs)], rtt_min=0.1)
            sim.call_in(0.001, arrive)  # 12 Mbps
        arrive()
        sim.run(until=1.0)
        tacks = [p for p in port.sent if p.kind is PacketType.TACK]
        assert 30 <= len(tacks) <= 50

    def test_byte_counting_regime_low_rate(self, sim):
        """Trickle traffic: one TACK per L=2 packets (plus straggler
        flush), never the periodic 40/s."""
        params = TackParams()
        rx, port = make_receiver(sim, TackPolicy(params))
        seqs = itertools.count()
        def arrive():
            i = next(seqs)
            if i < 20:
                feed(sim, rx, [i], rtt_min=0.1)
                sim.call_in(0.04, arrive)  # 0.3 Mbps
        arrive()
        sim.run(until=2.0)
        tacks = [p for p in port.sent if p.kind is PacketType.TACK]
        assert 8 <= len(tacks) <= 13

    def test_tail_flushed_when_flow_stops(self, sim):
        rx, port = make_receiver(sim, TackPolicy(TackParams()))
        feed(sim, rx, [0], rtt_min=0.1)  # single sub-L packet
        sim.run(until=1.0)
        tacks = [p for p in port.sent if p.kind is PacketType.TACK]
        assert len(tacks) == 1

    def test_tack_carries_rate_and_timing(self, sim):
        rx, port = make_receiver(sim, TackPolicy(TackParams()))
        seqs = itertools.count()
        def arrive():
            i = next(seqs)
            if i < 100:
                feed(sim, rx, [i], rtt_min=0.05)
                sim.call_in(0.001, arrive)
        arrive()
        sim.run(until=0.5)
        tacks = [p for p in port.sent if p.kind is PacketType.TACK]
        assert tacks
        fb = tacks[-1].meta["fb"]
        assert fb.delivery_rate_bps is not None and fb.delivery_rate_bps > 0
        assert fb.echo_departure_ts is not None
        assert fb.tack_delay is not None and fb.tack_delay >= 0


class TestIack:
    def test_gap_triggers_iack_pull(self, sim):
        rx, port = make_receiver(sim, TackPolicy(TackParams()))
        feed(sim, rx, [0, 1])
        feed(sim, rx, [3])  # pkt_seq jumps 2 -> 4
        iacks = [p for p in port.sent if p.kind is PacketType.IACK]
        assert len(iacks) == 1
        fb = iacks[0].meta["fb"]
        assert fb.pull_pkt_range == (2, 4)
        assert fb.reason == "loss"

    def test_iack_reorder_delay_suppresses_false_pull(self, sim):
        """With a settling delay, a gap that reordered arrivals fill in
        time produces no IACK at all."""
        params = TackParams(iack_reorder_delay_factor=0.25)
        rx, port = make_receiver(sim, TackPolicy(params))
        feed(sim, rx, [0, 2], rtt_min=0.1)
        assert not [p for p in port.sent if p.kind is PacketType.IACK]
        feed(sim, rx, [1], rtt_min=0.1)  # fills the hole in time
        sim.run(until=0.1)
        iacks = [p for p in port.sent if p.kind is PacketType.IACK]
        assert iacks == []

    def test_iack_reorder_delay_still_pulls_real_loss(self, sim):
        """A gap that persists past the settling delay is pulled."""
        params = TackParams(iack_reorder_delay_factor=0.25)
        rx, port = make_receiver(sim, TackPolicy(params))
        feed(sim, rx, [0, 2], rtt_min=0.1)  # hole at pkt_seq 2 persists
        sim.run(until=0.1)
        iacks = [p for p in port.sent if p.kind is PacketType.IACK]
        assert len(iacks) == 1
        assert iacks[0].meta["fb"].pull_pkt_range == (1, 3)

    def test_zero_window_iack(self, sim):
        rx, port = make_receiver(
            sim, TackPolicy(TackParams()), rcv_buffer_bytes=6 * MSS,
            auto_drain=False,
        )
        feed(sim, rx, range(5))
        window_iacks = [
            p for p in port.sent
            if p.kind is PacketType.IACK
            and p.meta["fb"].reason == "zero_window"
        ]
        assert window_iacks

    def test_window_open_iack_after_read(self, sim):
        rx, port = make_receiver(
            sim, TackPolicy(TackParams()), rcv_buffer_bytes=6 * MSS,
            auto_drain=False,
        )
        feed(sim, rx, range(5))
        rx.read(5 * MSS)
        opens = [
            p for p in port.sent
            if p.kind is PacketType.IACK
            and p.meta["fb"].reason == "window_open"
        ]
        assert opens
        assert opens[-1].meta["fb"].awnd == 6 * MSS


class TestRichVsPoor:
    def _gappy_receiver(self, sim, rich):
        params = TackParams(rich=rich)
        rx, port = make_receiver(sim, TackPolicy(params))
        # every third packet missing: indices 0,1, 3,4, 6,7 ...
        indices = [i for i in range(30) if i % 3 != 2]
        feed(sim, rx, indices, rtt_min=0.01)
        sim.run(until=1.0)
        tacks = [p for p in port.sent if p.kind is PacketType.TACK]
        return tacks[-1].meta["fb"]

    def test_rich_reports_many_unacked_blocks(self, sim):
        fb = self._gappy_receiver(sim, rich=True)
        assert len(fb.unacked_blocks) == 9

    def test_poor_reports_q_blocks(self, sim):
        fb = self._gappy_receiver(sim, rich=False)
        assert len(fb.unacked_blocks) == 1

    def test_rich_tack_larger_on_wire(self, sim):
        rich_fb_size = None
        poor_fb_size = None
        for rich in (True, False):
            params = TackParams(rich=rich)
            rx, port = make_receiver(sim, TackPolicy(params))
            indices = [i for i in range(30) if i % 3 != 2]
            feed(sim, rx, indices, rtt_min=0.01)
            sim.run(until=sim.now() + 1.0)
            tacks = [p for p in port.sent if p.kind is PacketType.TACK]
            size = tacks[-1].size
            if rich:
                rich_fb_size = size
            else:
                poor_fb_size = size
        assert rich_fb_size > poor_fb_size
