"""reprolint: rule firing, pragmas, config, CLI contract."""

import json
from pathlib import Path

from repro.lint import LintConfig, RULES, lint_source
from repro.lint.cli import JSON_SCHEMA_VERSION, main
from repro.lint.config import load_config
from repro.lint.engine import parse_pragmas

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Path prefix that places a fixture inside simulation scope.
SIM = "src/repro/netsim/fixture.py"
#: Host-side path matched by the default exempt globs.
HOST = "src/repro/runner/fixture.py"


def codes(src, path=SIM, config=None):
    return [f.code for f in lint_source(src, path, config)]


class TestRuleFiring:
    def test_rep001_wall_clock(self):
        src = "import time\n\ndef f():\n    return time.time()\n"
        assert codes(src) == ["REP001"]

    def test_rep001_variants(self):
        for call in ("time.monotonic()", "time.perf_counter()",
                     "datetime.now()", "datetime.datetime.utcnow()"):
            assert codes(f"x = {call}\n") == ["REP001"], call

    def test_rep001_virtual_clock_ok(self):
        assert codes("t = sim.now()\nu = self.sim.clock.now()\n") == []

    def test_rep002_module_level_random(self):
        assert codes("import random\nx = random.random()\n") == ["REP002"]
        assert codes("import random\nrandom.seed(4)\n") == ["REP002"]

    def test_rep002_numpy_random(self):
        assert codes("import numpy as np\nx = np.random.rand(3)\n") == ["REP002"]
        assert codes("import numpy\nnumpy.random.seed(1)\n") == ["REP002"]

    def test_rep002_from_import(self):
        assert codes("from random import random\n") == ["REP002"]

    def test_rep002_unseeded_instance(self):
        assert codes("import random\nrng = random.Random()\n") == ["REP002"]

    def test_rep002_seeded_ok(self):
        # A *parameterized* seed satisfies both REP002 (instance is
        # seeded) and REP008 (seed is not a baked-in literal).
        assert codes("import random\n"
                     "def f(seed):\n"
                     "    return random.Random(seed)\n") == []
        assert codes("import numpy as np\nrng = np.random.default_rng(7)\n") == []

    def test_rep003_time_equality(self):
        assert codes("if t1_s == t2_s:\n    pass\n") == ["REP003"]
        assert codes("done = ev.time != now\n") == ["REP003"]

    def test_rep003_sentinels_ok(self):
        assert codes("if completed_at == None:\n    pass\n") == []
        assert codes("if timing_mode == 'advanced':\n    pass\n") == []
        assert codes("if t1_s <= t2_s:\n    pass\n") == []

    def test_rep004_missing_suffix(self):
        src = ("class Link:\n"
               "    def __init__(self, delay: float = 0.5):\n"
               "        self.delay = delay\n")
        assert codes(src) == ["REP004"]

    def test_rep004_suffixed_ok(self):
        src = ("class Link:\n"
               "    def __init__(self, delay_s: float = 0.5,\n"
               "                 rate_bps: float = 1e6,\n"
               "                 gain_factor: float = 0.5):\n"
               "        pass\n")
        assert codes(src) == []

    def test_rep004_int_and_out_of_scope_exempt(self):
        src = ("class Q:\n"
               "    def __init__(self, depth: int = 100):\n"
               "        pass\n")
        assert codes(src) == []
        # Same float violation outside the simulator packages: silent.
        bad = ("class A:\n"
               "    def __init__(self, delay: float = 0.5):\n"
               "        pass\n")
        assert codes(bad, path="src/repro/stats/fixture.py") == []

    def test_rep004_params_file_checks_all_defs(self):
        src = "def interval(self, period: float = 0.5):\n    return period\n"
        assert codes(src, path="src/repro/core/params.py") == ["REP004"]
        assert codes(src, path=SIM) == []  # not an __init__

    def test_rep005_mutable_default(self):
        assert codes("def f(xs=[]):\n    pass\n") == ["REP005"]
        assert codes("def f(m={}):\n    pass\n") == ["REP005"]
        assert codes("def f(s=set()):\n    pass\n") == ["REP005"]

    def test_rep005_none_default_ok(self):
        assert codes("def f(xs=None):\n    pass\n") == []

    def test_rep006_sim_side_telemetry_wall_clock(self):
        src = "import time\nstamp = time.time()\n"
        found = codes(src, path="src/repro/telemetry/collector.py")
        # Telemetry modules are in general-simulation scope too, so
        # REP001 fires alongside the telemetry-specific rule.
        assert found == ["REP001", "REP006"]

    def test_rep006_host_side_cli_exempt(self):
        src = "import time\nstamp = time.time()\n"
        # cli.py/__main__.py run host-side: both the exempt globs
        # (REP001-REP003) and the REP006 host-file list carve them out.
        assert codes(src, path="src/repro/telemetry/cli.py") == []
        assert codes(src, path="src/repro/telemetry/__main__.py") == []

    def test_rep006_outside_telemetry_silent(self):
        src = "import time\nstamp = time.time()\n"
        assert codes(src, path=SIM) == ["REP001"]

    def test_rep006_host_files_configurable(self):
        config = LintConfig(telemetry_host_files=("special.py",))
        src = "import time\nstamp = time.time()\n"
        found = codes(src, path="src/repro/telemetry/cli.py", config=config)
        assert "REP006" in found  # cli.py no longer in the host list
        assert codes(src, path="src/repro/telemetry/special.py",
                     config=config) == ["REP001"]

    def test_rep007_import_of_profile_packages(self):
        assert codes("from repro.profile import Profiler\n") == ["REP007"]
        assert codes("import repro.bench\n") == ["REP007"]
        assert codes("from repro.profile.profiler import Profiler\n") == \
            ["REP007"]

    def test_rep007_unguarded_profiler_call(self):
        src = ("class Engine:\n"
               "    def step(self):\n"
               "        self.profiler.event_begin(None, 0)\n")
        assert codes(src) == ["REP007"]
        assert codes("prof.wrap('x', f)\n") == ["REP007"]
        assert codes("self._prof.event_end()\n") == ["REP007"]

    def test_rep007_guarded_calls_ok(self):
        src = ("class Engine:\n"
               "    def step(self):\n"
               "        if self.profiler is not None:\n"
               "            self.profiler.event_begin(None, 0)\n"
               "            try:\n"
               "                pass\n"
               "            finally:\n"
               "                self.profiler.event_end()\n")
        assert codes(src) == []
        hoisted = ("def run(self):\n"
                   "    prof = self.profiler\n"
                   "    if prof is not None:\n"
                   "        prof.event_begin(None, 0)\n")
        assert codes(hoisted) == []

    def test_rep007_guard_does_not_leak_to_else_or_after(self):
        src = ("if prof is not None:\n"
               "    pass\n"
               "else:\n"
               "    prof.wrap('x', f)\n")
        assert codes(src) == ["REP007"]
        after = ("if prof is not None:\n"
                 "    pass\n"
                 "prof.wrap('x', f)\n")
        assert codes(after) == ["REP007"]

    def test_rep007_guard_name_must_match(self):
        src = ("if other is not None:\n"
               "    prof.wrap('x', f)\n")
        assert codes(src) == ["REP007"]

    def test_rep007_host_side_silent(self):
        src = "from repro.profile import Profiler\nprof.wrap('x', f)\n"
        assert codes(src, path=HOST) == []
        assert codes(src, path="src/repro/experiments/fixture.py") == []

    def test_rep007_non_profiler_names_untouched(self):
        assert codes("self.policy.attach(receiver)\n") == []

    def test_rep007_pragma_suppresses(self):
        src = "prof.close()  # reprolint: disable=REP007\n"
        assert codes(src) == []

    def test_instrumented_sim_modules_pass_rep007(self):
        """The real hook sites stay inside the fence."""
        config = load_config(REPO_ROOT / "pyproject.toml")
        for rel in ("src/repro/netsim/engine.py",
                    "src/repro/transport/sender.py",
                    "src/repro/transport/receiver.py",
                    "src/repro/cc/base.py",
                    "src/repro/ack/base.py"):
            path = REPO_ROOT / rel
            found = [f for f in
                     lint_source(path.read_text(), str(path), config)
                     if f.code == "REP007"]
            assert found == [], "\n".join(f.render() for f in found)

    def test_rep008_fixed_seed_flagged(self):
        assert codes("import random\nrng = random.Random(42)\n") == ["REP008"]
        # from-import of random already trips REP002; REP008 adds the
        # seed finding on the bare-name constructor too.
        assert codes("from random import Random\nrng = Random(0)\n") == \
            ["REP002", "REP008"]
        assert codes("import random\nrng = random.Random('link-fwd')\n") == \
            ["REP008"]

    def test_rep008_parameterized_seed_ok(self):
        assert codes("import random\n"
                     "def f(seed):\n"
                     "    return random.Random(seed)\n") == []
        assert codes("rng = sim.fork_rng('chaos')\n") == []

    def test_rep008_host_side_silent(self):
        assert codes("import random\nrng = random.Random(42)\n",
                     path=HOST) == []
        assert codes("import random\nrng = random.Random(42)\n",
                     path="src/repro/experiments/fixture.py") == []

    def test_rep008_chaos_package_in_scope(self):
        assert codes("import random\nrng = random.Random(7)\n",
                     path="src/repro/chaos/fixture.py") == ["REP008"]

    def test_rep008_fleet_generators_in_scope(self):
        # The fleet workload/shard generators are simulation code: a
        # baked-in seed there would silently correlate every shard.
        src = "import random\nrng = random.Random(42)\n"
        assert codes(src, path="src/repro/fleet/workload.py") == ["REP008"]
        assert codes(src, path="src/repro/fleet/shard.py") == ["REP008"]

    def test_rep008_fleet_host_plumbing_exempt(self):
        # ...while the campaign CLI / manifest / report host code in
        # the same package is carved out by the sim-exempt globs.
        src = "import random\nrng = random.Random(42)\n"
        for host in ("cli.py", "__main__.py", "campaign.py",
                     "manifest.py", "report.py"):
            assert codes(src, path=f"src/repro/fleet/{host}") == [], host

    def test_rep008_pragma_suppresses(self):
        src = ("import random\n"
               "rng = random.Random(42)  # reprolint: disable=REP008\n")
        assert codes(src) == []

    def test_syntax_error_is_reported(self):
        assert codes("def f(:\n") == ["REP000"]


class TestPragmas:
    def test_line_pragma_suppresses(self):
        src = "import time\nx = time.time()  # reprolint: disable=REP001\n"
        assert codes(src) == []

    def test_line_pragma_wrong_code_keeps_finding(self):
        src = "import time\nx = time.time()  # reprolint: disable=REP002\n"
        assert codes(src) == ["REP001"]

    def test_bare_disable_suppresses_everything_on_line(self):
        src = "import time\nx = time.time()  # reprolint: disable\n"
        assert codes(src) == []

    def test_file_pragma(self):
        src = ("# reprolint: disable-file=REP001\n"
               "import time\n"
               "a = time.time()\n"
               "b = time.monotonic()\n")
        assert codes(src) == []

    def test_parse_pragmas(self):
        per_line, file_wide = parse_pragmas(
            "# reprolint: disable-file=REP004\n"
            "x = 1  # reprolint: disable=REP001,REP003\n")
        assert file_wide == {"REP004"}
        assert per_line == {2: {"REP001", "REP003"}}


class TestConfig:
    def test_exempt_paths_skip_determinism_rules(self):
        src = "import time\nstarted = time.time()\n"
        assert codes(src, path=HOST) == []

    def test_exempt_paths_still_check_mutable_defaults(self):
        assert codes("def f(xs=[]):\n    pass\n", path=HOST) == ["REP005"]

    def test_repo_pyproject_extends_allow_names(self):
        config = load_config(REPO_ROOT / "pyproject.toml")
        assert "beta" in config.allow_names
        assert "seed" in config.allow_names  # defaults preserved

    def test_disabled_rules(self):
        config = LintConfig(disabled_rules=("REP001",))
        assert codes("import time\nx = time.time()\n", config=config) == []

    def test_sim_exempt_scope_split(self):
        config = LintConfig()
        assert config.in_sim_scope("src/repro/fleet/workload.py")
        assert config.in_sim_scope("src/repro/fleet/shard.py")
        assert not config.in_sim_scope("src/repro/fleet/campaign.py")
        assert not config.in_sim_scope("src/repro/fleet/report.py")
        # The fleet host files are also exempt from REP001-REP003.
        assert config.is_exempt("src/repro/fleet/cli.py")
        assert not config.is_exempt("src/repro/fleet/workload.py")

    def test_extend_sim_exempt_appends(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            "[tool.reprolint]\n"
            'extend-sim-exempt = ["*/repro/fleet/extra_host.py"]\n')
        config = load_config(pyproject)
        assert "*/repro/fleet/cli.py" in config.sim_exempt  # default kept
        assert not config.in_sim_scope("src/repro/fleet/extra_host.py")
        assert config.in_sim_scope("src/repro/fleet/workload.py")

    def test_rule_registry_is_stable(self):
        assert list(RULES) == ["REP001", "REP002", "REP003", "REP004",
                               "REP005", "REP006", "REP007", "REP008"]


class TestCli:
    def write(self, tmp_path, name, body):
        f = tmp_path / name
        f.write_text(body)
        return f

    def test_exit_zero_and_text_output_on_clean_file(self, tmp_path, capsys):
        f = self.write(tmp_path, "ok.py", "x = 1\n")
        assert main([str(f)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        f = self.write(tmp_path, "bad.py", "def f(xs=[]):\n    pass\n")
        assert main([str(f)]) == 1
        out = capsys.readouterr().out
        assert "REP005" in out and "bad.py" in out

    def test_exit_two_on_missing_path(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2

    def test_json_schema(self, tmp_path, capsys):
        f = self.write(tmp_path, "bad.py",
                       "import time\ndef f(xs=[]):\n    return time.time()\n")
        # Fixture lives outside any repro package: REP001 needs sim
        # scope only for exemption, and tmp files are not exempt.
        assert main([str(f), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert payload["files_checked"] == 1
        assert set(payload["counts"]) == {"REP001", "REP005"}
        finding = payload["findings"][0]
        assert set(finding) == {"code", "message", "path", "line", "col"}

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in RULES:
            assert code in out

    def test_directory_walk(self, tmp_path, capsys):
        self.write(tmp_path, "a.py", "x = 1\n")
        sub = tmp_path / "pkg"
        sub.mkdir()
        (sub / "b.py").write_text("def f(m={}):\n    pass\n")
        assert main([str(tmp_path), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files_checked"] == 2
        assert payload["counts"] == {"REP005": 1}


class TestTreeIsClean:
    def test_src_lints_clean_with_repo_config(self):
        """The acceptance gate: `python -m repro.lint src/` exits 0."""
        config = load_config(REPO_ROOT / "pyproject.toml")
        from repro.lint import lint_paths
        findings, checked = lint_paths([REPO_ROOT / "src"], config)
        assert checked > 100
        assert findings == [], "\n".join(f.render() for f in findings)
